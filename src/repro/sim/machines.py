"""Calibrated machine models for the paper's experiment platforms (§5).

Each entry reproduces the documented hardware of one machine used in the
paper, with per-workload-class IPC / stall / calibration-bias parameters
chosen so the *measured* experiment outcomes land where the paper reports
them (see EXPERIMENTS.md for the paper-vs-measured comparison):

* ``thinkie``  — Intel Core i7 M620 laptop, 4 cores, 8 GB, local SSD;
  the machine all profiling runs use (E.1/E.2).
* ``stampede`` — 2× 8-core Xeon E5-2680 (Sandy Bridge), 32 GB, local HDD.
* ``archer``   — Cray XC30, 2× 12-core E5-2697v2 (Ivy Bridge), 64 GB.
* ``supermic`` — 2× 10-core E5-2680 (Ivy Bridge-EP), 128 GB, Lustre;
  measured sustained clock ≈ 3.59 GHz (§5 E.3).
* ``comet``    — 2× 12-core E5-2680v3, 128 GB, NFS; sustained ≈ 2.89 GHz.
* ``titan``    — 16-core AMD Opteron 6274, 32 GB, Lustre.
* ``localhost``— a generic modern node for examples and quick tests.

Calibration notes
-----------------
*Application IPC* on Comet (2.17) and Supermic (2.04) are the paper's
measured Fig 11 values, as are the sustained kernel IPCs (C: 2.80 / 2.53,
ASM: 3.30 / 2.86).  The kernel *calibration* IPCs encode the E.3 cycle
error convergence (C: ~3.5 % / ~4.0 %, ASM: ~14.5 % / ~26.5 %) via
``bias = calib_ipc / ipc``.  The Lustre model is shared verbatim between
Titan and Supermic because the paper finds "Lustre performs very similar
for both resources", while the local filesystems differ strongly.
"""

from __future__ import annotations

from repro.parallel.scaling import ScalingModel
from repro.sim.filesystem import FilesystemModel
from repro.sim.resource import CPUModel, MachineSpec, MemoryModel, WorkloadClassSpec

__all__ = ["get_machine", "list_machines", "resolve_machine", "MACHINES"]

_GB = 1 << 30


def _classes(
    app_md: tuple[float, float],
    asm: tuple[float, float],
    c_kernel: tuple[float, float],
    python: tuple[float, float] = (0.55, 1.05),
) -> dict[str, WorkloadClassSpec]:
    """Build a workload-class table from (ipc, cycle_bias) pairs."""

    def kernel(ipc: float, bias: float, stall: float) -> WorkloadClassSpec:
        return WorkloadClassSpec(
            ipc=ipc, calib_ipc=ipc * bias, stall_ratio=stall
        )

    app_ipc, app_stall = app_md
    return {
        "app.md": WorkloadClassSpec(ipc=app_ipc, stall_ratio=app_stall),
        "app.generic": WorkloadClassSpec(ipc=app_ipc * 0.85, stall_ratio=0.6),
        "app.startup": WorkloadClassSpec(ipc=1.1, stall_ratio=0.9),
        "app.io": WorkloadClassSpec(ipc=0.9, stall_ratio=1.1),
        "kernel.asm": kernel(asm[0], asm[1], stall=0.12),
        "kernel.c": kernel(c_kernel[0], c_kernel[1], stall=0.45),
        "kernel.python": kernel(python[0], python[1], stall=1.4),
        "kernel.sleep": WorkloadClassSpec(ipc=1.0, stall_ratio=0.0),
    }


# The shared Lustre mount (identical parameters on Titan and Supermic —
# "likely access the same Lustre metadata service and I/O node").
_LUSTRE = FilesystemModel(
    name="lustre",
    kind="lustre",
    read_latency=0.8e-3,
    write_latency=8e-3,
    read_bandwidth=6e8,
    write_bandwidth=1.5e8,
    cache_bandwidth=2.5e9,
    cache_hit_fraction=0.7,
)

_NFS = FilesystemModel(
    name="nfs",
    kind="nfs",
    read_latency=1.2e-3,
    write_latency=15e-3,
    read_bandwidth=2.5e8,
    write_bandwidth=6e7,
    cache_bandwidth=1.5e9,
    cache_hit_fraction=0.3,
)


def _thinkie() -> MachineSpec:
    return MachineSpec(
        name="thinkie",
        description="Intel Core i7 M620, 4 cores, 8GB, Intel SSD 320 (profiling host)",
        cpu=CPUModel(
            frequency=2.67e9,
            cores=4,
            classes=_classes(
                app_md=(1.90, 0.55), asm=(2.90, 1.030), c_kernel=(2.40, 1.015)
            ),
        ),
        memory_bytes=8 * _GB,
        memory=MemoryModel(),
        filesystems={
            "local": FilesystemModel(
                name="local",
                kind="local-ssd",
                read_latency=30e-6,
                write_latency=150e-6,
                read_bandwidth=1.2e9,
                write_bandwidth=4.5e8,
                cache_bandwidth=3e9,
                cache_hit_fraction=0.5,
            )
        },
        scaling={
            "openmp": ScalingModel(0.975, 0.006),
            "mpi": ScalingModel(0.975, 0.008),
        },
        noise_sigma=0.015,
    )


def _stampede() -> MachineSpec:
    return MachineSpec(
        name="stampede",
        description="2x 8-core Xeon E5-2680 (Sandy Bridge), 32GB, local 250GB HDD",
        cpu=CPUModel(
            frequency=2.7e9,
            cores=16,
            classes=_classes(
                app_md=(2.05, 0.50), asm=(3.10, 1.047), c_kernel=(2.70, 1.030)
            ),
        ),
        memory_bytes=32 * _GB,
        filesystems={
            "local": FilesystemModel(
                name="local",
                kind="local-hdd",
                read_latency=0.5e-3,
                write_latency=4e-3,
                read_bandwidth=1.5e8,
                write_bandwidth=1.1e8,
                cache_bandwidth=2.5e9,
                cache_hit_fraction=0.45,
            )
        },
        scaling={
            "openmp": ScalingModel(0.985, 0.005),
            "mpi": ScalingModel(0.985, 0.006),
        },
        noise_sigma=0.015,
    )


def _archer() -> MachineSpec:
    return MachineSpec(
        name="archer",
        description="Cray XC30, 2x 12-core E5-2697v2 (Ivy Bridge), 64GB, local /tmp",
        cpu=CPUModel(
            frequency=2.7e9,
            cores=24,
            classes=_classes(
                app_md=(2.10, 0.48), asm=(3.15, 1.050), c_kernel=(2.75, 1.030)
            ),
        ),
        memory_bytes=64 * _GB,
        filesystems={
            "local": FilesystemModel(
                name="local",
                kind="local-hdd",
                read_latency=0.6e-3,
                write_latency=5e-3,
                read_bandwidth=1.3e8,
                write_bandwidth=9e7,
                cache_bandwidth=2.5e9,
                cache_hit_fraction=0.45,
            )
        },
        scaling={
            "openmp": ScalingModel(0.985, 0.005),
            "mpi": ScalingModel(0.988, 0.005),
        },
        noise_sigma=0.012,
    )


def _supermic() -> MachineSpec:
    return MachineSpec(
        name="supermic",
        description="2x 10-core Xeon E5-2680 (Ivy Bridge-EP), 128GB, Lustre",
        cpu=CPUModel(
            # Sustained clock measured in E.3: ~3.58-3.60 GHz.
            frequency=3.59e9,
            cores=20,
            classes=_classes(
                app_md=(2.04, 0.52), asm=(2.86, 1.265), c_kernel=(2.53, 1.040)
            ),
        ),
        memory_bytes=128 * _GB,
        filesystems={
            "lustre": _LUSTRE,
            "local": FilesystemModel(
                name="local",
                kind="local-hdd",
                read_latency=0.4e-3,
                write_latency=3e-3,
                read_bandwidth=2.5e8,
                write_bandwidth=1e8,
                cache_bandwidth=2e9,
                cache_hit_fraction=0.4,
            ),
        },
        default_fs="lustre",
        scaling={
            "openmp": ScalingModel(0.990, 0.009),
            "mpi": ScalingModel(0.992, 0.0045),
        },
        noise_sigma=0.02,
    )


def _comet() -> MachineSpec:
    return MachineSpec(
        name="comet",
        description="2x 12-core Xeon E5-2680v3, 128GB, NFS",
        cpu=CPUModel(
            # Sustained clock measured in E.3: ~2.88-2.90 GHz.
            frequency=2.89e9,
            cores=24,
            classes=_classes(
                app_md=(2.17, 0.50), asm=(3.30, 1.145), c_kernel=(2.80, 1.035)
            ),
        ),
        memory_bytes=128 * _GB,
        filesystems={
            "nfs": _NFS,
            "local": FilesystemModel(
                name="local",
                kind="local-ssd",
                read_latency=0.2e-3,
                write_latency=1.5e-3,
                read_bandwidth=4e8,
                write_bandwidth=1.8e8,
                cache_bandwidth=2.5e9,
                cache_hit_fraction=0.5,
            ),
        },
        default_fs="nfs",
        scaling={
            "openmp": ScalingModel(0.988, 0.006),
            "mpi": ScalingModel(0.990, 0.005),
        },
        noise_sigma=0.015,
    )


def _titan() -> MachineSpec:
    return MachineSpec(
        name="titan",
        description="16-core AMD Opteron 6274, 32GB DDR3, Lustre (OLCF)",
        cpu=CPUModel(
            frequency=2.2e9,
            cores=16,
            classes=_classes(
                app_md=(1.40, 0.75), asm=(2.10, 1.060), c_kernel=(1.80, 1.040)
            ),
        ),
        memory_bytes=32 * _GB,
        filesystems={
            "lustre": _LUSTRE,
            "local": FilesystemModel(
                name="local",
                kind="local-ssd",
                read_latency=60e-6,
                write_latency=0.5e-3,
                read_bandwidth=8e8,
                write_bandwidth=3e8,
                cache_bandwidth=3e9,
                cache_hit_fraction=0.6,
            ),
        },
        default_fs="lustre",
        # Titan shows more consistent runs (smaller error bars, Fig 12)
        # and OpenMP outperforms OpenMPI there; the opposite of Supermic.
        scaling={
            "openmp": ScalingModel(0.992, 0.0035),
            "mpi": ScalingModel(0.992, 0.0070),
        },
        noise_sigma=0.008,
    )


def _localhost() -> MachineSpec:
    return MachineSpec(
        name="localhost",
        description="Generic modern workstation (examples / quick tests)",
        cpu=CPUModel(
            frequency=3.0e9,
            cores=8,
            classes=_classes(
                app_md=(2.2, 0.45), asm=(3.2, 1.04), c_kernel=(2.8, 1.02)
            ),
        ),
        memory_bytes=16 * _GB,
        filesystems={
            "local": FilesystemModel(name="local", kind="local-ssd"),
        },
        scaling={
            "openmp": ScalingModel(0.985, 0.005),
            "mpi": ScalingModel(0.985, 0.006),
        },
        noise_sigma=0.01,
    )


#: Registry of machine factories, keyed by machine name.
MACHINES = {
    "thinkie": _thinkie,
    "stampede": _stampede,
    "archer": _archer,
    "supermic": _supermic,
    "comet": _comet,
    "titan": _titan,
    "localhost": _localhost,
}

_CACHE: dict[str, MachineSpec] = {}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine model by name (specs are shared and read-only)."""
    if name not in MACHINES:
        raise KeyError(f"unknown machine {name!r}; available: {sorted(MACHINES)}")
    if name not in _CACHE:
        _CACHE[name] = MACHINES[name]()
    return _CACHE[name]


def list_machines() -> list[str]:
    """Names of all registered machine models."""
    return sorted(MACHINES)


def resolve_machine(machine: MachineSpec | str) -> MachineSpec:
    """Pass specs through unchanged; look up names in the registry."""
    if isinstance(machine, str):
        return get_machine(machine)
    return machine
