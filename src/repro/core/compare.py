"""Profile comparison: application vs emulation (or any two profiles).

The paper's validation methodology is exactly this comparison: "we
profiled the emulated application and compared the reported system
resource consumption results" (E.2), and all of E.3's figures are
per-metric error percentages between application and emulation runs.
:class:`ProfileComparison` packages that workflow: pick two profiles (or
two repeat groups), compare totals, derived metrics and Tx, and render
the error table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.samples import Profile
from repro.core.statistics import aggregate, error_percent
from repro.util.tables import Table

__all__ = ["ComparisonRow", "ProfileComparison"]

#: Metrics compared by default (the ones both planes reliably record).
DEFAULT_METRICS = (
    "tx",
    "cpu.cycles_used",
    "cpu.instructions",
    "cpu.flops",
    "io.bytes_read",
    "io.bytes_written",
    "mem.allocated",
    "mem.freed",
    "mem.peak",
    "cpu.efficiency",
    "cpu.ipc",
)


@dataclass(frozen=True)
class ComparisonRow:
    """One metric's reference/measured pair with its error."""

    metric: str
    reference: float
    measured: float

    @property
    def error_pct(self) -> float:
        """Unsigned percentage error (the paper's E.3 'error %')."""
        return error_percent(self.reference, self.measured)

    @property
    def signed_pct(self) -> float:
        """Signed percentage difference."""
        if self.reference == 0:
            return float("inf") if self.measured else 0.0
        return 100.0 * (self.measured - self.reference) / self.reference


@dataclass
class ProfileComparison:
    """Per-metric comparison of a measured run against a reference."""

    reference_label: str
    measured_label: str
    rows: list[ComparisonRow] = field(default_factory=list)

    @classmethod
    def between(
        cls,
        reference: Profile | Sequence[Profile],
        measured: Profile | Sequence[Profile],
        metrics: Iterable[str] | None = None,
        reference_label: str = "reference",
        measured_label: str = "measured",
    ) -> "ProfileComparison":
        """Compare two profiles (or two repeat groups, via their means).

        Only metrics present on *both* sides are compared; requesting
        ``metrics=None`` uses :data:`DEFAULT_METRICS`.
        """
        ref_stats = aggregate([reference] if isinstance(reference, Profile) else list(reference))
        mes_stats = aggregate([measured] if isinstance(measured, Profile) else list(measured))
        wanted = tuple(metrics) if metrics is not None else DEFAULT_METRICS
        rows = []
        for name in wanted:
            if name in ref_stats.metrics and name in mes_stats.metrics:
                rows.append(
                    ComparisonRow(
                        metric=name,
                        reference=ref_stats.metrics[name].mean,
                        measured=mes_stats.metrics[name].mean,
                    )
                )
        return cls(reference_label=reference_label, measured_label=measured_label, rows=rows)

    def row(self, metric: str) -> ComparisonRow:
        """Look up one comparison row (raises ``KeyError`` if absent)."""
        for row in self.rows:
            if row.metric == metric:
                return row
        raise KeyError(f"metric {metric!r} not compared; have {[r.metric for r in self.rows]}")

    def max_error(self, metrics: Iterable[str] | None = None) -> float:
        """Largest unsigned error over the chosen metrics."""
        names = set(metrics) if metrics is not None else None
        errors = [
            row.error_pct
            for row in self.rows
            if (names is None or row.metric in names) and row.reference != 0
        ]
        return max(errors) if errors else 0.0

    def table(self) -> Table:
        """Render the comparison (the E.3-style error table)."""
        table = Table(
            ["metric", self.reference_label, self.measured_label, "diff %"],
            title=f"{self.measured_label} vs {self.reference_label}",
        )
        for row in self.rows:
            table.add_row([row.metric, row.reference, row.measured, f"{row.signed_pct:+.2f}"])
        return table
