"""Emulation plans: the bridge from a profile to atom workloads.

A plan is the ordered list of per-sample resource quanta the emulator
will replay.  Building it from a profile preserves two invariants the
paper's fidelity rests on (§4 and §4.4):

* **conservation** — per resource, the plan's total equals the profile's
  recorded total (emulation "attempts to consume the same amount of
  system resources as the original application");
* **order** — plan samples appear exactly in profile sample order
  ("the sample ordering is an essential element of the fidelity").

Plans are also the malleability surface (requirement E.3): they can be
rescaled per resource dimension, re-gridded, or translated into a
simulation workload for any target machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.atoms.base import AtomWork
from repro.core.config import SynapseConfig
from repro.core.errors import EmulationError
from repro.core.samples import Profile
from repro.kernels.registry import get_kernel
from repro.sim.demands import ComputeDemand, IODemand, MemoryDemand, NetworkDemand, SleepDemand
from repro.sim.packed import PackedBuilder, PackedWorkload
from repro.sim.resource import MachineSpec
from repro.sim.workload import SimWorkload

__all__ = ["PlanSample", "EmulationPlan", "EMULATOR_STARTUP_SLEEP", "EMULATOR_STARTUP_INSTRUCTIONS"]

#: Emulator startup delay components (§5 E.2: "the Synapse Emulator
#: startup delay (~1 sec)"): mostly waiting on the profile fetch and
#: interpreter spin-up (I/O bound, few cycles) ...
EMULATOR_STARTUP_SLEEP = 0.9
#: ... plus a small amount of plan-preparation compute, at startup IPC.
EMULATOR_STARTUP_INSTRUCTIONS = 5.0e7
#: Resident footprint of the emulator driver ("multiple Python instances",
#: §4.5 "Overheads"; the profiler itself uses ~150 MB).
EMULATOR_BASE_RSS = 150 << 20


@dataclass(frozen=True)
class PlanSample:
    """One replay quantum: everything sample ``index`` asks the atoms for."""

    index: int
    work: AtomWork


@dataclass
class EmulationPlan:
    """Ordered atom workloads derived from one profile."""

    samples: list[PlanSample]
    command: str = ""
    tags: tuple[str, ...] = ()
    source_machine: dict[str, Any] = field(default_factory=dict)
    sample_rate: float = 1.0
    info: dict[str, Any] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_profile(cls, profile: Profile, config: SynapseConfig | None = None) -> "EmulationPlan":
        """Translate a profile's samples into replay quanta.

        Counter deltas can carry tiny negative noise (unsynchronised
        watcher clocks); they are clamped at zero, which keeps the
        conservation error bounded by the noise floor.
        """
        if profile.n_samples == 0:
            raise EmulationError("cannot build an emulation plan from an empty profile")
        samples: list[PlanSample] = []
        for sample in profile.samples:
            get = sample.values.get

            def positive(name: str) -> float:
                value = get(name, 0.0)
                return value if value > 0.0 else 0.0

            work = AtomWork(
                cycles=positive("cpu.cycles_used"),
                flops=positive("cpu.flops"),
                alloc_bytes=int(positive("mem.allocated")),
                free_bytes=int(positive("mem.freed")),
                read_bytes=int(positive("io.bytes_read")),
                write_bytes=int(positive("io.bytes_written")),
                sent_bytes=int(positive("net.bytes_written")),
                received_bytes=int(positive("net.bytes_read")),
            )
            samples.append(PlanSample(index=sample.index, work=work))
        info: dict[str, Any] = {
            "source_tx": profile.tx,
            "source_samples": profile.n_samples,
        }
        # Block sizes inferred by the experimental blktrace watcher (§6):
        # carried along so "auto" block-size emulation can use them.
        for key in ("io.block_size_read_mean", "io.block_size_write_mean"):
            if key in profile.statics:
                info[key] = float(profile.statics[key])
        return cls(
            samples=samples,
            command=profile.command,
            tags=profile.tags,
            source_machine=dict(profile.machine),
            sample_rate=profile.sample_rate,
            info=info,
        )

    # -- queries ---------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of replay quanta."""
        return len(self.samples)

    def totals(self) -> AtomWork:
        """Summed resource consumption across all plan samples."""
        total = AtomWork()
        for sample in self.samples:
            total = total + sample.work
        return total

    # -- malleability (requirement E.3) ---------------------------------------

    def scaled(
        self,
        cpu: float = 1.0,
        io: float = 1.0,
        mem: float = 1.0,
        net: float = 1.0,
    ) -> "EmulationPlan":
        """Rescale resource dimensions (tuning beyond the original app)."""
        if min(cpu, io, mem, net) < 0:
            raise EmulationError("scale factors must be non-negative")
        scaled = [
            PlanSample(
                index=s.index,
                work=AtomWork(
                    cycles=s.work.cycles * cpu,
                    flops=s.work.flops * cpu,
                    alloc_bytes=int(s.work.alloc_bytes * mem),
                    free_bytes=int(s.work.free_bytes * mem),
                    read_bytes=int(s.work.read_bytes * io),
                    write_bytes=int(s.work.write_bytes * io),
                    sent_bytes=int(s.work.sent_bytes * net),
                    received_bytes=int(s.work.received_bytes * net),
                ),
            )
            for s in self.samples
        ]
        plan = replace(self, samples=scaled)
        plan.info = dict(self.info, scaled={"cpu": cpu, "io": io, "mem": mem, "net": net})
        return plan

    def regrid(self, factor: int) -> "EmulationPlan":
        """Merge every ``factor`` consecutive samples into one.

        This is the Fig 2 sampling-rate knob in reverse: a coarser grid
        removes serialisation points, potentially increasing concurrency
        speed-up during replay.  Totals are preserved exactly.
        """
        if factor < 1:
            raise EmulationError("regrid factor must be >= 1")
        merged: list[PlanSample] = []
        for start in range(0, len(self.samples), factor):
            chunk = self.samples[start : start + factor]
            work = AtomWork()
            for sample in chunk:
                work = work + sample.work
            merged.append(PlanSample(index=len(merged), work=work))
        plan = replace(self, samples=merged)
        plan.sample_rate = self.sample_rate / factor
        plan.info = dict(self.info, regrid=factor)
        return plan

    # -- configuration resolution ---------------------------------------------

    def effective_config(self, config: SynapseConfig) -> SynapseConfig:
        """Resolve ``"auto"`` block sizes against profiled block sizes.

        When the profile was taken with the blktrace watcher, the plan
        carries byte-weighted mean block sizes; ``"auto"`` picks those up
        (§6 future work).  Without profiled data, ``"auto"`` falls back
        to 1 MB — the conservative large-block assumption of §4.2.
        """
        changes: dict[str, Any] = {}
        if config.io_block_size_read == "auto":
            changes["io_block_size_read"] = int(
                self.info.get("io.block_size_read_mean", 1 << 20)
            )
        if config.io_block_size_write == "auto":
            changes["io_block_size_write"] = int(
                self.info.get("io.block_size_write_mean", 1 << 20)
            )
        return config.replace(**changes) if changes else config

    # -- simulation-plane translation ---------------------------------------------

    def build_sim_workload(
        self, config: SynapseConfig, machine: MachineSpec | None = None
    ) -> SimWorkload:
        """Express this plan as a simulation workload (Fig 2 semantics).

        Each plan sample becomes one phase; each atom with work becomes a
        concurrent stream inside it.  Compute demands carry the selected
        kernel's workload class and the target cycle budget, so the
        machine's calibration bias applies exactly as on real hardware.
        """
        config = self.effective_config(config)
        kernel = get_kernel(config.compute_kernel)
        threads = max(config.openmp_threads, 1)
        paradigm = "openmp"
        if config.mpi_processes > 1:
            threads = config.mpi_processes
            paradigm = "mpi"
        fs = config.io_filesystem
        # CPU-efficiency targeting (Table 1: partially supported, manual):
        # efficiency = used/(used+stalled)  =>  stalled/used = 1/eff - 1.
        stall_override = None
        if config.efficiency_target is not None:
            stall_override = 1.0 / config.efficiency_target - 1.0

        workload = SimWorkload(
            name=f"synapse-emulate {self.command}",
            base_rss=EMULATOR_BASE_RSS,
            metadata={
                "emulation_of": self.command,
                "kernel": kernel.name,
                "command": f"synapse-emulate {self.command}",
            },
        )

        startup = workload.phase("emulator-startup")
        stream = startup.stream("driver")
        stream.add(SleepDemand(EMULATOR_STARTUP_SLEEP))
        stream.add(
            ComputeDemand(
                instructions=EMULATOR_STARTUP_INSTRUCTIONS,
                workload_class="app.startup",
            )
        )

        load_fraction = config.cpu_load
        for plan_sample in self.samples:
            work = plan_sample.work
            if work.empty:
                continue
            phase = workload.phase(f"sample-{plan_sample.index}")
            if work.cycles > 0:
                flop_frac = min(1.0, work.flops / work.cycles) if work.cycles else 0.0
                phase.stream("compute").add(
                    ComputeDemand(
                        instructions=0.0,
                        workload_class=kernel.workload_class,
                        calibrated_cycles=work.cycles,
                        flops_per_instruction=flop_frac,
                        threads=threads,
                        paradigm=paradigm,
                        stall_ratio=stall_override,
                    )
                )
                if load_fraction > 0:
                    # Artificial background load (§4.3): co-scheduled CPU
                    # work proportional to the sample's own cycle budget.
                    phase.stream("cpu-load").add(
                        ComputeDemand(
                            instructions=0.0,
                            workload_class=kernel.workload_class,
                            calibrated_cycles=work.cycles * load_fraction,
                        )
                    )
            if work.read_bytes > 0 or work.write_bytes > 0:
                storage = phase.stream("storage")
                if work.read_bytes > 0:
                    storage.add(
                        IODemand(
                            bytes_read=work.read_bytes,
                            block_size=int(config.io_block_size_read),
                            filesystem=fs,
                        )
                    )
                if work.write_bytes > 0:
                    storage.add(
                        IODemand(
                            bytes_written=work.write_bytes,
                            block_size=int(config.io_block_size_write),
                            filesystem=fs,
                        )
                    )
            if work.alloc_bytes > 0 or work.free_bytes > 0:
                phase.stream("memory").add(
                    MemoryDemand(
                        allocate=work.alloc_bytes,
                        free=work.free_bytes,
                        block_size=int(config.mem_block_size),
                    )
                )
            if work.sent_bytes > 0 or work.received_bytes > 0:
                phase.stream("network").add(
                    NetworkDemand(
                        bytes_sent=work.sent_bytes,
                        bytes_received=work.received_bytes,
                        block_size=int(config.net_block_size),
                    )
                )
        return workload

    def build_packed_workload(
        self, config: SynapseConfig, machine: MachineSpec | None = None
    ) -> PackedWorkload:
        """Columnar twin of :meth:`build_sim_workload`.

        Emits the exact same demands in the same phase/stream order but
        straight into packed columns, so replaying large plans (one phase
        per profile sample) never materialises per-demand objects.
        """
        del machine
        config = self.effective_config(config)
        kernel = get_kernel(config.compute_kernel)
        threads = max(config.openmp_threads, 1)
        paradigm = "openmp"
        if config.mpi_processes > 1:
            threads = config.mpi_processes
            paradigm = "mpi"
        fs = config.io_filesystem
        stall_override = None
        if config.efficiency_target is not None:
            stall_override = 1.0 / config.efficiency_target - 1.0

        b = PackedBuilder(
            f"synapse-emulate {self.command}",
            base_rss=EMULATOR_BASE_RSS,
            metadata={
                "emulation_of": self.command,
                "kernel": kernel.name,
                "command": f"synapse-emulate {self.command}",
            },
        )

        b.phase("emulator-startup")
        b.stream("driver")
        b.sleep(EMULATOR_STARTUP_SLEEP)
        b.compute(
            instructions=EMULATOR_STARTUP_INSTRUCTIONS,
            workload_class="app.startup",
        )

        load_fraction = config.cpu_load
        for plan_sample in self.samples:
            work = plan_sample.work
            if work.empty:
                continue
            b.phase(f"sample-{plan_sample.index}")
            if work.cycles > 0:
                flop_frac = min(1.0, work.flops / work.cycles) if work.cycles else 0.0
                b.stream("compute")
                b.compute(
                    instructions=0.0,
                    workload_class=kernel.workload_class,
                    calibrated_cycles=work.cycles,
                    flops_per_instruction=flop_frac,
                    threads=threads,
                    paradigm=paradigm,
                    stall_ratio=stall_override,
                )
                if load_fraction > 0:
                    b.stream("cpu-load")
                    b.compute(
                        instructions=0.0,
                        workload_class=kernel.workload_class,
                        calibrated_cycles=work.cycles * load_fraction,
                    )
            if work.read_bytes > 0 or work.write_bytes > 0:
                b.stream("storage")
                if work.read_bytes > 0:
                    b.io(
                        bytes_read=work.read_bytes,
                        block_size=int(config.io_block_size_read),
                        filesystem=fs,
                    )
                if work.write_bytes > 0:
                    b.io(
                        bytes_written=work.write_bytes,
                        block_size=int(config.io_block_size_write),
                        filesystem=fs,
                    )
            if work.alloc_bytes > 0 or work.free_bytes > 0:
                b.stream("memory")
                b.memory(
                    allocate=work.alloc_bytes,
                    free=work.free_bytes,
                    block_size=int(config.mem_block_size),
                )
            if work.sent_bytes > 0 or work.received_bytes > 0:
                b.stream("network")
                b.network(
                    bytes_sent=work.sent_bytes,
                    bytes_received=work.received_bytes,
                    block_size=int(config.net_block_size),
                )
        return b.build()
