"""Exception hierarchy for the Synapse reproduction.

Every error raised by the library derives from :class:`SynapseError`, so a
caller embedding Synapse as middleware tooling (the paper's use cases) can
catch one type at the integration boundary.

Retry taxonomy
--------------

Long-running campaigns retry failed work (``RunPolicy`` retries, the
campaign's store-write retries), and retrying blindly wastes a whole
retry budget on errors that can never succeed (a malformed spec fails
identically every attempt).  :func:`is_retryable` classifies any
exception:

* an explicit ``retryable`` attribute on the exception wins (the
  :class:`RetryableError` / :class:`FatalError` markers set it);
* configuration-shaped errors (:class:`ConfigError`,
  :class:`WorkloadError`) and :class:`PoisonRequestError` are fatal —
  their cause is the request itself, not the environment;
* everything else is presumed transient and retryable (I/O hiccups,
  store contention, injected faults, timeouts).
"""

from __future__ import annotations

__all__ = [
    "SynapseError",
    "ConfigError",
    "WorkloadError",
    "BackendError",
    "CalibrationError",
    "StoreError",
    "CorruptArtifactError",
    "DocumentTooLargeError",
    "ProfileNotFoundError",
    "EmulationError",
    "ProfilingError",
    "RetryableError",
    "FatalError",
    "PoisonRequestError",
    "is_retryable",
]


class SynapseError(Exception):
    """Base class for all library errors."""


class ConfigError(SynapseError):
    """Invalid configuration value (bad sample rate, unknown kernel, ...)."""


class WorkloadError(SynapseError):
    """A workload description is malformed or unsupported by a backend."""


class BackendError(SynapseError):
    """An execution backend failed to spawn or observe a process."""


class CalibrationError(SynapseError):
    """A compute kernel could not be calibrated on the current resource."""


class StoreError(SynapseError):
    """Generic profile store failure."""


class DocumentTooLargeError(StoreError):
    """A profile document exceeded the store's per-document size limit.

    The Mongo-like store raises this only in ``strict`` mode; by default it
    truncates trailing samples, reproducing the paper's observation that
    the largest E.1 configuration "misses one data sample due to
    limitations in the database backend".
    """


class ProfileNotFoundError(StoreError):
    """No stored profile matches the requested command/tag combination."""


class CorruptArtifactError(StoreError):
    """A stored payload failed its integrity check (checksum mismatch).

    Raised by the file store when a profile file's bytes no longer hash
    to the blake2b digest its sidecar journal recorded at ``put`` time —
    bit rot, a torn overwrite, or tampering.  Deliberately **fatal**
    (``retryable = False``): re-reading corrupt bytes returns the same
    corrupt bytes, so retry loops must surface the damage immediately
    instead of burning their budget on it.
    """

    retryable = False


class ProfilingError(SynapseError):
    """The profiler failed while observing a process."""


class EmulationError(SynapseError):
    """The emulator failed while replaying a profile."""


class RetryableError(SynapseError):
    """Marker base: a transient failure that a retry may fix."""

    retryable = True


class FatalError(SynapseError):
    """Marker base: a permanent failure no retry can fix."""

    retryable = False


class PoisonRequestError(FatalError):
    """A request repeatedly killed its worker pool and was quarantined.

    Raised by the run service's supervisor instead of requeueing a
    request forever: a request whose execution takes the worker process
    down (segfault, ``os._exit``, OOM kill) breaks the *pool*, so every
    requeue round costs a pool restart and re-executes innocent
    bystander requests.  After :data:`~repro.runtime.service.RunService.
    POISON_CRASH_LIMIT` pool crashes with the same request in flight,
    the supervisor fails it with this error — carrying the request key
    and crash count — and the rest of the batch proceeds.
    """

    def __init__(self, message: str, key: str | None = None, crashes: int = 0):
        super().__init__(message)
        self.key = key
        self.crashes = crashes


#: Exception types whose cause is the request/config itself: retrying
#: them re-fails identically, so retry loops stop immediately.
_FATAL_TYPES = (ConfigError, WorkloadError, FatalError)


def is_retryable(exc: BaseException) -> bool:
    """Whether a retry of the failed operation could plausibly succeed.

    An explicit boolean ``retryable`` attribute on the exception wins;
    otherwise configuration-shaped errors are fatal and everything else
    (I/O errors, store contention, timeouts) is presumed transient.
    """
    flag = getattr(exc, "retryable", None)
    if flag is not None:
        return bool(flag)
    return not isinstance(exc, _FATAL_TYPES)
