"""Exception hierarchy for the Synapse reproduction.

Every error raised by the library derives from :class:`SynapseError`, so a
caller embedding Synapse as middleware tooling (the paper's use cases) can
catch one type at the integration boundary.
"""

from __future__ import annotations

__all__ = [
    "SynapseError",
    "ConfigError",
    "WorkloadError",
    "BackendError",
    "CalibrationError",
    "StoreError",
    "DocumentTooLargeError",
    "ProfileNotFoundError",
    "EmulationError",
    "ProfilingError",
]


class SynapseError(Exception):
    """Base class for all library errors."""


class ConfigError(SynapseError):
    """Invalid configuration value (bad sample rate, unknown kernel, ...)."""


class WorkloadError(SynapseError):
    """A workload description is malformed or unsupported by a backend."""


class BackendError(SynapseError):
    """An execution backend failed to spawn or observe a process."""


class CalibrationError(SynapseError):
    """A compute kernel could not be calibrated on the current resource."""


class StoreError(SynapseError):
    """Generic profile store failure."""


class DocumentTooLargeError(StoreError):
    """A profile document exceeded the store's per-document size limit.

    The Mongo-like store raises this only in ``strict`` mode; by default it
    truncates trailing samples, reproducing the paper's observation that
    the largest E.1 configuration "misses one data sample due to
    limitations in the database backend".
    """


class ProfileNotFoundError(StoreError):
    """No stored profile matches the requested command/tag combination."""


class ProfilingError(SynapseError):
    """The profiler failed while observing a process."""


class EmulationError(SynapseError):
    """The emulator failed while replaying a profile."""
