"""Profile data model: samples, profiles and (de)serialisation.

A *profile* is the product of one profiling run: metadata (command, tags,
machine description, configuration) plus an ordered list of *samples*.
Each sample covers one sampling interval and stores, per metric, either
the counter increment over the interval (cumulative metrics) or the level
observed at sampling time (level metrics).  Sample order is the essential
fidelity-carrying property of the paper (§4.4): the emulator replays
samples strictly in this order.

Timestamps of different watchers are intentionally *not* synchronised
(the paper accepts drift rather than paying synchronisation overhead);
each sample therefore optionally carries per-watcher timestamps alongside
the nominal grid time.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.core import metrics as _metrics
from repro.core.metrics import MetricKind
from repro.core.tags import normalize_command, normalize_tags
from repro.util.timeseries import TimeSeries

__all__ = ["Sample", "Profile"]


@dataclass
class Sample:
    """One profiler sampling interval.

    Attributes
    ----------
    index:
        Position in the profile (0-based); replay order.
    t:
        Interval start, seconds since process start (nominal grid time).
    dt:
        Interval length in seconds.
    values:
        Metric name -> delta (cumulative metrics) or level (level metrics).
    watcher_times:
        Watcher name -> actual timestamp at which that watcher sampled;
        may drift from ``t`` (§4.1).
    """

    index: int
    t: float
    dt: float
    values: dict[str, float] = field(default_factory=dict)
    watcher_times: dict[str, float] = field(default_factory=dict)

    def get(self, name: str, default: float = 0.0) -> float:
        """Value of one metric in this sample (``default`` when absent)."""
        return self.values.get(name, default)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by both profile stores."""
        return {
            "index": self.index,
            "t": self.t,
            "dt": self.dt,
            "values": dict(self.values),
            "watcher_times": dict(self.watcher_times),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sample":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(data["index"]),
            t=float(data["t"]),
            dt=float(data["dt"]),
            values={str(k): float(v) for k, v in data.get("values", {}).items()},
            watcher_times={
                str(k): float(v) for k, v in data.get("watcher_times", {}).items()
            },
        )


@dataclass
class Profile:
    """A stored profiling result for one application run."""

    command: str
    tags: tuple[str, ...] = ()
    machine: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)
    sample_rate: float = 1.0
    samples: list[Sample] = field(default_factory=list)
    #: Static metrics (core count, clock frequency, filesystem name, ...).
    statics: dict[str, Any] = field(default_factory=dict)
    #: Free-form run information (backend, exit code, watcher list, ...).
    info: dict[str, Any] = field(default_factory=dict)
    #: True when a store dropped trailing samples (16 MB document limit).
    truncated: bool = False
    created: float = field(default_factory=_time.time)

    def __post_init__(self) -> None:
        self.command = normalize_command(self.command)
        self.tags = normalize_tags(self.tags)

    # -- basic queries ------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    @property
    def tx(self) -> float:
        """Application execution time Tx (seconds).

        Prefers the rusage-recorded runtime total; falls back to the sum
        of sample intervals when the rusage watcher was disabled.
        """
        runtime = self.totals().get("time.runtime")
        if runtime is not None and runtime > 0:
            return runtime
        return float(sum(s.dt for s in self.samples))

    def metric_names(self) -> list[str]:
        """All metric names appearing in samples or statics."""
        names: set[str] = set(self.statics)
        for sample in self.samples:
            names.update(sample.values)
        return sorted(names)

    def totals(self) -> dict[str, float]:
        """Integrated totals per metric (Table 1 'Tot.' column semantics).

        Cumulative metrics sum their per-sample deltas; level metrics
        report their maximum observed level; statics pass through.
        Unknown metric names default to cumulative semantics.
        """
        sums: dict[str, float] = {}
        maxima: dict[str, float] = {}
        for sample in self.samples:
            for name, value in sample.values.items():
                spec = _metrics.REGISTRY.get(name)
                if spec is not None and spec.kind is MetricKind.LEVEL:
                    maxima[name] = max(maxima.get(name, float("-inf")), value)
                else:
                    sums[name] = sums.get(name, 0.0) + value
        totals: dict[str, float] = {}
        totals.update(sums)
        totals.update(maxima)
        for name, value in self.statics.items():
            if isinstance(value, (int, float)):
                totals[name] = float(value)
        return totals

    def derived(self) -> dict[str, float]:
        """Derived metrics (§4.3) computed from :meth:`totals`."""
        return _metrics.derive_metrics(self.totals())

    def series(self, name: str) -> TimeSeries:
        """Reconstruct the cumulative/level time series of one metric.

        Cumulative metrics are re-accumulated from their deltas (starting
        at zero); level metrics are returned as sampled.
        """
        spec = _metrics.REGISTRY.get(name)
        level = spec is not None and spec.kind is MetricKind.LEVEL
        times: list[float] = []
        values: list[float] = []
        running = 0.0
        for sample in self.samples:
            times.append(sample.t + sample.dt)
            if level:
                values.append(sample.get(name))
            else:
                running += sample.get(name)
                values.append(running)
        return TimeSeries(times, values)

    # -- editing -------------------------------------------------------------

    def truncate(self, n_samples: int) -> "Profile":
        """Copy of this profile keeping only the first ``n_samples`` samples.

        The copy is flagged ``truncated`` — this is what the Mongo-like
        store does when a document would exceed its 16 MB limit.
        """
        clone = Profile(
            command=self.command,
            tags=self.tags,
            machine=dict(self.machine),
            config=dict(self.config),
            sample_rate=self.sample_rate,
            samples=[
                Sample(s.index, s.t, s.dt, dict(s.values), dict(s.watcher_times))
                for s in self.samples[:n_samples]
            ],
            statics=dict(self.statics),
            info=dict(self.info),
            truncated=True,
            created=self.created,
        )
        return clone

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise the full profile to a JSON-compatible dict."""
        return {
            "command": self.command,
            "tags": list(self.tags),
            "machine": dict(self.machine),
            "config": dict(self.config),
            "sample_rate": self.sample_rate,
            "samples": [s.to_dict() for s in self.samples],
            "statics": dict(self.statics),
            "info": dict(self.info),
            "truncated": self.truncated,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Profile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            command=data["command"],
            tags=tuple(data.get("tags", ())),
            machine=dict(data.get("machine", {})),
            config=dict(data.get("config", {})),
            sample_rate=float(data.get("sample_rate", 1.0)),
            samples=[Sample.from_dict(s) for s in data.get("samples", [])],
            statics=dict(data.get("statics", {})),
            info=dict(data.get("info", {})),
            truncated=bool(data.get("truncated", False)),
            created=float(data.get("created", 0.0)),
        )

    def document_size(self) -> int:
        """Size in bytes of the JSON document this profile serialises to."""
        return len(json.dumps(self.to_dict()).encode("utf-8"))

    @staticmethod
    def merge_watcher_series(
        grid: Iterable[tuple[float, float]],
        cumulative: Mapping[str, TimeSeries],
        levels: Mapping[str, TimeSeries],
        watcher_times: Mapping[str, Iterable[float]] | None = None,
    ) -> list[Sample]:
        """Combine per-watcher time series into the unified sample list.

        This is the post-processing step of §4.1: the individual watcher
        series (with drifting timestamps) are aligned onto the profiler's
        nominal grid.  ``grid`` yields ``(t, dt)`` interval descriptors;
        cumulative series are differenced across interval boundaries and
        level series are sampled at interval ends.

        The merge is batched: every series is interpolated over the
        whole grid in one :meth:`TimeSeries.values_at` shot and the
        per-interval deltas come from one array difference — the same
        packed-array treatment the sim plane's grid sampling got —
        instead of one ``value_at`` call per metric per interval.
        Results are bit-identical to the scalar merge (the test suite
        pins the equivalence against a scalar reference
        implementation): the array difference subtracts exactly the
        float64 values the scalar loop tracked in ``prev_cum``, and
        counters of a freshly spawned process start at zero — seeding
        from the first *observation* instead would swallow everything
        before the first watcher sample (the spawn-to-first-sample
        offset the paper corrects with ``time -v``).
        """
        intervals = list(grid)
        ends = np.fromiter(
            (t + dt for t, dt in intervals), dtype=float, count=len(intervals)
        )
        cum_deltas = {
            name: np.diff(series.values_at(ends), prepend=0.0)
            for name, series in cumulative.items()
        }
        level_values = {
            name: series.values_at(ends) for name, series in levels.items()
        }
        wt = {k: list(v) for k, v in (watcher_times or {}).items()}
        samples: list[Sample] = []
        for index, (t, dt) in enumerate(intervals):
            values: dict[str, float] = {
                name: float(deltas[index]) for name, deltas in cum_deltas.items()
            }
            for name, level in level_values.items():
                values[name] = float(level[index])
            times = {
                watcher: stamps[index]
                for watcher, stamps in wt.items()
                if index < len(stamps)
            }
            samples.append(Sample(index=index, t=t, dt=dt, values=values, watcher_times=times))
        return samples
