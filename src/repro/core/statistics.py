"""Multi-profile statistics (§4: "basic statistics analysis on the
resource consumption recorded across those profiles").

E.1 and E.3 report means with error bars — E.3 specifically uses 99 %
confidence intervals — over repeated profiling runs of the same
command/tag combination.  :func:`aggregate` reproduces that analysis over
any collection of profiles sharing a search key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np
from scipy import stats as sstats

from repro.core.errors import SynapseError
from repro.core.samples import Profile
from repro.util.tables import Table

__all__ = ["MetricStats", "ProfileStats", "aggregate", "error_percent"]


@dataclass(frozen=True)
class MetricStats:
    """Summary statistics of one metric across repeated runs."""

    name: str
    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    #: Half-width of the 99 % confidence interval of the mean (Student t).
    ci99: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n > 0 else float("nan")

    def compatible_with(self, other: "MetricStats", sigmas: float = 4.0) -> bool:
        """Loose agreement check: means within ``sigmas`` combined spread."""
        spread = max(self.std + other.std, 1e-12 * (abs(self.mean) + abs(other.mean)))
        return abs(self.mean - other.mean) <= sigmas * spread


@dataclass
class ProfileStats:
    """Per-metric statistics over a set of profiles with one search key."""

    command: str
    tags: tuple[str, ...]
    n_profiles: int
    metrics: dict[str, MetricStats] = field(default_factory=dict)

    def metric(self, name: str) -> MetricStats:
        """Statistics of one metric (raises for unknown names)."""
        try:
            return self.metrics[name]
        except KeyError:
            raise SynapseError(
                f"metric {name!r} not present; have {sorted(self.metrics)}"
            ) from None

    def mean(self, name: str) -> float:
        """Shortcut for ``metric(name).mean``."""
        return self.metric(name).mean

    def table(self, names: Iterable[str] | None = None) -> Table:
        """Render chosen metrics (default: all) as an ASCII table."""
        table = Table(
            ["metric", "n", "mean", "std", "ci99", "min", "max"],
            title=f"{self.command} {list(self.tags)} ({self.n_profiles} profiles)",
        )
        for name in names if names is not None else sorted(self.metrics):
            stat = self.metrics[name]
            table.add_row(
                [name, stat.n, stat.mean, stat.std, stat.ci99, stat.minimum, stat.maximum]
            )
        return table


def _stats_from_values(name: str, values: list[float]) -> MetricStats:
    arr = np.asarray(values, dtype=float)
    n = arr.size
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    if n > 1 and std > 0:
        ci99 = float(sstats.t.ppf(0.995, n - 1) * std / math.sqrt(n))
    else:
        ci99 = 0.0
    return MetricStats(
        name=name,
        n=n,
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci99=ci99,
    )


def aggregate(profiles: Iterable[Profile]) -> ProfileStats:
    """Aggregate totals + derived metrics + Tx across repeated profiles.

    All profiles should share one command/tag combination (the paper's
    grouping); the first profile's key is reported.
    """
    profiles = list(profiles)
    if not profiles:
        raise SynapseError("cannot aggregate zero profiles")
    values: dict[str, list[float]] = {}
    for profile in profiles:
        merged: dict[str, float] = {}
        merged.update(profile.totals())
        merged.update(profile.derived())
        merged["tx"] = profile.tx
        for name, value in merged.items():
            values.setdefault(name, []).append(float(value))
    metrics = {
        name: _stats_from_values(name, vals)
        for name, vals in values.items()
        # Only aggregate metrics present in every run, so partial
        # availability does not skew the statistics.
        if len(vals) == len(profiles)
    }
    return ProfileStats(
        command=profiles[0].command,
        tags=profiles[0].tags,
        n_profiles=len(profiles),
        metrics=metrics,
    )


def error_percent(reference: float, measured: float) -> float:
    """Percentage error of ``measured`` against ``reference`` (E.3 plots)."""
    if reference == 0:
        return float("inf") if measured != 0 else 0.0
    return abs(measured - reference) / abs(reference) * 100.0


def summarize_comparison(
    reference: Mapping[str, float], measured: Mapping[str, float]
) -> dict[str, float]:
    """Per-metric error percentages for keys present in both mappings."""
    return {
        name: error_percent(reference[name], measured[name])
        for name in reference
        if name in measured
    }
