"""The Synapse emulator: replay profiles as resource consumption (§4.2).

The emulator is "driven by a global loop which feeds sequences of profile
samples to the atoms".  Semantics per sample (Fig 2):

* all resource consumptions of a sample start immediately and
  concurrently (one thread per atom on the host plane; one stream per
  atom on the simulation plane);
* the sample ends when its last consumption completes (barrier);
* samples replay strictly in recorded order, which is how implicit
  cross-resource dependencies survive (§4.4).

``Emulator.run`` accepts a :class:`Profile` directly, or a command/tag
pair resolved through the profile store — the ``emulate(command, tags)``
call of the paper's public API.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.atoms.base import AtomBase
from repro.atoms.registry import get_atom
from repro.core.backend import ExecutionBackend
from repro.core.config import SynapseConfig
from repro.core.errors import EmulationError
from repro.core.plan import EmulationPlan
from repro.core.samples import Profile
from repro.storage.base import ProfileStore

__all__ = ["Emulator", "EmulationResult"]


@dataclass
class EmulationResult:
    """Outcome of one emulation run."""

    #: Execution time of the emulation (the paper's emulated Tx).
    tx: float
    #: The replayed plan.
    plan: EmulationPlan
    #: Name of the backend the emulation ran on (``host`` / ``sim``).
    backend: str
    #: Machine description of the emulating resource.
    machine: dict[str, Any] = field(default_factory=dict)
    #: Wall duration of each replayed sample (host plane only).
    sample_durations: list[float] = field(default_factory=list)
    #: The spawned virtual process (simulation plane only); lets callers
    #: re-profile the emulation — the paper's E.2 sanity check.
    handle: Any = None
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def startup_delay(self) -> float:
        """Time spent before the first sample replay began."""
        return float(self.info.get("startup_delay", 0.0))


class Emulator:
    """Replays emulation plans on one backend with one configuration."""

    def __init__(
        self,
        backend: ExecutionBackend | None = None,
        config: SynapseConfig | None = None,
        store: ProfileStore | None = None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else SynapseConfig()
        self.store = store

    # -- public API ----------------------------------------------------------

    def run(
        self,
        source: Profile | EmulationPlan | str,
        tags: object = None,
        service: Any = None,
    ) -> EmulationResult:
        """Emulate a profile, a prepared plan, or a stored command.

        The resolved plan executes as one emulate request through the
        run service (:mod:`repro.runtime`).  Because the request
        carries this emulator's live backend it runs in-parent — single
        emulations keep their exact pre-service semantics — while
        campaign sweeps submit the same request kind declaratively and
        fan out across the service's worker pool.
        """
        import functools  # noqa: PLC0415 - tiny, call-path only

        from repro.runtime.service import RunRequest, get_service  # noqa: PLC0415 (cycle)

        plan = self._resolve_plan(source, tags)
        if type(self) is Emulator:
            request = RunRequest(
                kind="emulate", target=plan, backend=self.backend, config=self.config
            )
        else:
            # Subclasses may override the plane drivers; route their
            # replay through the service as an opaque call so the
            # executor cannot rebuild a base-class emulator around it.
            request = RunRequest(
                kind="call", runner=functools.partial(self.replay, plan)
            )
        svc = service if service is not None else get_service()
        [result] = svc.run([request])
        return result.value

    def replay(self, plan: EmulationPlan) -> EmulationResult:
        """Execute one resolved plan directly on this emulator's backend.

        This is the plane dispatch *below* the run service —
        the service's emulate executor calls it, so it must never
        submit back to the service.
        """
        if self.backend is not None and getattr(self.backend, "name", "") == "sim":
            return self._run_sim(plan)
        return self._run_host(plan)

    def _resolve_plan(self, source: Profile | EmulationPlan | str, tags: object) -> EmulationPlan:
        if isinstance(source, EmulationPlan):
            return source
        if isinstance(source, Profile):
            return EmulationPlan.from_profile(source, self.config)
        if isinstance(source, str):
            if self.store is None:
                raise EmulationError(
                    "emulating by command requires a profile store"
                )
            profile = self.store.get(source, tags)
            return EmulationPlan.from_profile(profile, self.config)
        raise EmulationError(
            f"cannot emulate {type(source).__name__}: expected Profile, "
            "EmulationPlan or command string"
        )

    # -- simulation plane --------------------------------------------------------

    def _run_sim(self, plan: EmulationPlan) -> EmulationResult:
        assert self.backend is not None
        machine = getattr(self.backend, "machine", None)
        workload = plan.build_packed_workload(self.config, machine)
        handle = self.backend.spawn(workload)
        handle.wait()
        record = handle.record
        startup = record.phase_bounds[0][1] if record.phase_bounds else 0.0
        return EmulationResult(
            tx=record.duration,
            plan=plan,
            backend="sim",
            machine=self.backend.machine_info(),
            handle=handle,
            info={
                "startup_delay": startup,
                "kernel": self.config.compute_kernel,
                "totals": record.totals(),
            },
        )

    # -- host plane -----------------------------------------------------------------

    def _run_host(self, plan: EmulationPlan) -> EmulationResult:
        import threading

        config = plan.effective_config(self.config)
        atoms: list[AtomBase] = [get_atom(name)(config) for name in config.atoms]
        t_begin = time.perf_counter()
        for atom in atoms:
            atom.setup()
        startup_delay = time.perf_counter() - t_begin

        durations: list[float] = []
        errors: list[BaseException] = []

        def run_atom(atom: AtomBase, work) -> None:
            try:
                atom.execute(work)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        try:
            for plan_sample in plan.samples:
                work = plan_sample.work
                workers = [
                    threading.Thread(
                        target=run_atom,
                        args=(atom, work),
                        name=f"atom-{atom.name}-{plan_sample.index}",
                    )
                    for atom in atoms
                    if atom.wants(work)
                ]
                t_sample = time.perf_counter()
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                durations.append(time.perf_counter() - t_sample)
                if errors:
                    raise EmulationError(
                        f"atom failed during sample {plan_sample.index}: {errors[0]!r}"
                    ) from errors[0]
        finally:
            for atom in atoms:
                atom.teardown()

        tx = time.perf_counter() - t_begin
        machine_info = (
            self.backend.machine_info() if self.backend is not None else {}
        )
        return EmulationResult(
            tx=tx,
            plan=plan,
            backend="host",
            machine=machine_info,
            sample_durations=durations,
            info={
                "startup_delay": startup_delay,
                "kernel": config.compute_kernel,
            },
        )
