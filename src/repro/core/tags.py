"""Command/tag indexing of profiles.

The paper stores profiles "using the application startup command and
custom tags as search index" (§4).  Tags disambiguate runs that share a
command line but differ in configuration files or environment — e.g. the
Gromacs experiments are tagged with the iteration count
(``tag_step=100000``).

This module normalises the many accepted tag spellings (``None``, a
single string, a list, or a mapping) into a canonical, hashable tuple so
stores and statistics can group profiles reliably.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["normalize_tags", "normalize_command", "profile_key", "tags_match"]


def normalize_tags(tags: object) -> tuple[str, ...]:
    """Normalise user-supplied tags into a sorted tuple of strings.

    Accepted forms::

        None                      -> ()
        "steps=1000"              -> ("steps=1000",)
        ["b", "a"]                -> ("a", "b")
        {"steps": 1000, "x": "y"} -> ("steps=1000", "x=y")
    """
    if tags is None:
        return ()
    if isinstance(tags, str):
        items = [tags]
    elif isinstance(tags, Mapping):
        items = [f"{key}={value}" for key, value in tags.items()]
    elif isinstance(tags, Sequence):
        items = [str(tag) for tag in tags]
    else:
        raise TypeError(f"unsupported tag specification: {type(tags).__name__}")
    cleaned = sorted({item.strip() for item in items if str(item).strip()})
    return tuple(cleaned)


def normalize_command(command: object) -> str:
    """Normalise a profiling target into its index string.

    Shell command lines are whitespace-normalised; Python callables are
    indexed by their qualified name (the paper profiles both).
    """
    if callable(command):
        module = getattr(command, "__module__", "") or ""
        name = getattr(command, "__qualname__", None) or getattr(command, "__name__", None)
        if name is None:
            name = repr(command)
        return f"python:{module}.{name}" if module else f"python:{name}"
    if isinstance(command, (list, tuple)):
        return " ".join(str(part) for part in command)
    return " ".join(str(command).split())


def profile_key(command: object, tags: object = None) -> tuple[str, tuple[str, ...]]:
    """The canonical ``(command, tags)`` search key for a profile."""
    return normalize_command(command), normalize_tags(tags)


def tags_match(stored: Sequence[str], query: object) -> bool:
    """True when every queried tag is present in the stored tag set.

    A query of ``None`` / empty matches anything: the paper's lookup only
    constrains the tags the caller specifies.
    """
    wanted = normalize_tags(query)
    return set(wanted).issubset(set(stored))
