"""Combining per-process profiles of one multi-process application.

§4.5 ("Multiprocessing"): "Synapse can be used to profile and emulate
multi-process and multi-core applications: each process is handled
individually".  Profiling N ranks therefore yields N profiles; replaying
the *application* needs them combined into one.  This module implements
that aggregation:

* cumulative metrics add sample-wise (rank 0's sample *k* plus rank 1's
  sample *k* — the ranks ran concurrently, so equal sample indices cover
  the same wall-clock window);
* level metrics add too (each rank's RSS is resident simultaneously);
* the combined Tx is the *maximum* rank Tx (the application ends when
  its last process exits);
* shorter ranks simply stop contributing past their end.

TCP/MPI communication between the ranks is NOT captured — the paper's
explicit limitation — and the combined profile documents the rank count
in its info for OpenMP/MPI replay configuration.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import metrics as _metrics
from repro.core.errors import SynapseError
from repro.core.metrics import MetricKind
from repro.core.samples import Profile, Sample

__all__ = ["combine_process_profiles"]


def combine_process_profiles(profiles: Sequence[Profile]) -> Profile:
    """Merge per-rank profiles of one run into an application profile.

    All profiles must share the same sampling grid (same sample rate);
    the command and machine of the first profile are kept, tags get a
    ``ranks=N`` marker, and ``info["combined_from"]`` records the rank
    count for later parallel replay.
    """
    if not profiles:
        raise SynapseError("cannot combine zero profiles")
    rates = {p.sample_rate for p in profiles}
    if len(rates) > 1:
        raise SynapseError(
            f"per-process profiles have mixed sample rates: {sorted(rates)}"
        )
    first = profiles[0]
    n_samples = max(p.n_samples for p in profiles)

    samples: list[Sample] = []
    for index in range(n_samples):
        values: dict[str, float] = {}
        t = None
        dt = None
        for prof in profiles:
            if index >= prof.n_samples:
                continue
            sample = prof.samples[index]
            if t is None:
                t, dt = sample.t, sample.dt
            for name, value in sample.values.items():
                spec = _metrics.REGISTRY.get(name)
                if spec is not None and spec.kind is MetricKind.LEVEL:
                    values[name] = values.get(name, 0.0) + value
                elif name == "time.runtime":
                    # Wall time is shared, not additive across ranks.
                    values[name] = max(values.get(name, 0.0), value)
                else:
                    values[name] = values.get(name, 0.0) + value
        samples.append(Sample(index=index, t=t or 0.0, dt=dt or 0.0, values=values))

    statics = dict(first.statics)
    # Peak memory across ranks is additive (simultaneously resident).
    for key in ("mem.peak_rusage",):
        total = sum(p.statics.get(key, 0.0) for p in profiles if key in p.statics)
        if total:
            statics[key] = total
    # The combined runtime is the longest rank's runtime.
    runtimes = [
        p.statics.get("time.runtime_rusage", 0.0)
        for p in profiles
        if "time.runtime_rusage" in p.statics
    ]
    if runtimes:
        statics["time.runtime_rusage"] = max(runtimes)

    combined = Profile(
        command=first.command,
        tags=tuple(first.tags) + (f"ranks={len(profiles)}",),
        machine=dict(first.machine),
        config=dict(first.config),
        sample_rate=first.sample_rate,
        samples=samples,
        statics=statics,
        info={
            "combined_from": len(profiles),
            "rank_tx": [p.tx for p in profiles],
            "note": "inter-process communication not captured (§4.5)",
        },
    )
    return combined
