"""Multi-process utilities: profile aggregation and parallel fan-out.

§4.5 ("Multiprocessing"): "Synapse can be used to profile and emulate
multi-process and multi-core applications: each process is handled
individually".  Profiling N ranks therefore yields N profiles; replaying
the *application* needs them combined into one.  This module implements
that aggregation:

* cumulative metrics add sample-wise (rank 0's sample *k* plus rank 1's
  sample *k* — the ranks ran concurrently, so equal sample indices cover
  the same wall-clock window);
* level metrics add too (each rank's RSS is resident simultaneously);
* the combined Tx is the *maximum* rank Tx (the application ends when
  its last process exits);
* shorter ranks simply stop contributing past their end.

TCP/MPI communication between the ranks is NOT captured — the paper's
explicit limitation — and the combined profile documents the rank count
in its info for OpenMP/MPI replay configuration.

The module also hosts the worker-side ``shared`` payload plumbing
(:func:`get_shared`) used by the run service's pool
(:class:`repro.runtime.service.RunService` — the fan-out engine behind
``SimBackend.spawn_many``, ``validate_plan`` and the benchmarks), plus
:func:`parallel_map`, a one-shot-pool convenience wrapper over it:
simulated experiments are pure CPU-bound Python, so many independent
emulated runs scale with cores only across processes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.core import metrics as _metrics
from repro.core.errors import SynapseError
from repro.core.metrics import MetricKind
from repro.core.samples import Profile, Sample

__all__ = ["ParallelFallbackWarning", "combine_process_profiles", "parallel_map"]


class ParallelFallbackWarning(RuntimeWarning):
    """A process pool could not be used; the batch ran serially instead.

    Emitted by :func:`parallel_map` and
    :class:`repro.runtime.service.RunService` when pool creation or the
    configured start method fails on constrained hosts (no fork
    permission, missing semaphores, sandboxed CI runners, ...).  The
    computation still completes — serially — so callers get correct
    results plus a signal that parallel speedup was unavailable.
    """

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Per-thread payload installed by :func:`parallel_map`'s ``shared``
#: argument (one pickle per worker instead of one per item).  Thread-
#: local rather than a plain global: concurrent serial batches in one
#: process — e.g. several elastic campaign workers sharing a store —
#: each install/restore their own tables without clobbering each other.
_shared_state = threading.local()


def _install_shared(payload: Any) -> None:
    _shared_state.payload = payload


def get_shared() -> Any:
    """The current :func:`parallel_map` ``shared`` payload (worker side)."""
    return getattr(_shared_state, "payload", None)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    processes: int | None = None,
    shared: Any = None,
) -> list[_R]:
    """Order-preserving map over a one-shot process pool.

    ``processes=None`` uses all cores; ``processes<=1`` (or a single
    item) runs serially in-process, with no pool overhead.  ``fn`` and
    the items should be picklable (module-level function, plain-data
    arguments) and ``fn`` should be pure: when the *pool* cannot be
    used — forbidden fork, unpicklable ``fn``/items, a worker dying —
    the map falls back to running the whole batch serially (with a
    :class:`ParallelFallbackWarning`), re-evaluating ``fn`` from
    scratch.  Exceptions raised by ``fn`` itself are not swallowed into
    that fallback: the first one (in item order) re-raises in the
    parent, exactly like the serial path.

    ``shared`` ships one bulky payload per worker chunk instead of once
    per item; workers — and the serial path — read it back with
    :func:`get_shared`.  Use it for payloads that are large relative to
    the items (a workload object fanned out over many seeds, a machine
    table, ...).

    This is a convenience wrapper over a throwaway
    :class:`repro.runtime.service.RunService` (one pool per call, torn
    down afterwards); batch-after-batch callers should hold a service —
    or use the process-wide default — so the pool is reused.
    """
    from repro.runtime.service import RunService  # noqa: PLC0415 (cycle)

    with RunService(processes=processes) as service:
        return service.map(fn, items, shared=shared)


def _serial_map(fn: Callable[[_T], _R], items: list[_T], shared: Any) -> list[_R]:
    if shared is None:
        return [fn(item) for item in items]
    previous = get_shared()
    _install_shared(shared)
    try:
        return [fn(item) for item in items]
    finally:
        _install_shared(previous)




def combine_process_profiles(profiles: Sequence[Profile]) -> Profile:
    """Merge per-rank profiles of one run into an application profile.

    All profiles must share the same sampling grid (same sample rate);
    the command and machine of the first profile are kept, tags get a
    ``ranks=N`` marker, and ``info["combined_from"]`` records the rank
    count for later parallel replay.
    """
    if not profiles:
        raise SynapseError("cannot combine zero profiles")
    rates = {p.sample_rate for p in profiles}
    if len(rates) > 1:
        raise SynapseError(
            f"per-process profiles have mixed sample rates: {sorted(rates)}"
        )
    first = profiles[0]
    n_samples = max(p.n_samples for p in profiles)

    samples: list[Sample] = []
    for index in range(n_samples):
        values: dict[str, float] = {}
        t = None
        dt = None
        for prof in profiles:
            if index >= prof.n_samples:
                continue
            sample = prof.samples[index]
            if t is None:
                t, dt = sample.t, sample.dt
            for name, value in sample.values.items():
                spec = _metrics.REGISTRY.get(name)
                if spec is not None and spec.kind is MetricKind.LEVEL:
                    values[name] = values.get(name, 0.0) + value
                elif name == "time.runtime":
                    # Wall time is shared, not additive across ranks.
                    values[name] = max(values.get(name, 0.0), value)
                else:
                    values[name] = values.get(name, 0.0) + value
        samples.append(Sample(index=index, t=t or 0.0, dt=dt or 0.0, values=values))

    statics = dict(first.statics)
    # Peak memory across ranks is additive (simultaneously resident).
    for key in ("mem.peak_rusage",):
        total = sum(p.statics.get(key, 0.0) for p in profiles if key in p.statics)
        if total:
            statics[key] = total
    # The combined runtime is the longest rank's runtime.
    runtimes = [
        p.statics.get("time.runtime_rusage", 0.0)
        for p in profiles
        if "time.runtime_rusage" in p.statics
    ]
    if runtimes:
        statics["time.runtime_rusage"] = max(runtimes)

    combined = Profile(
        command=first.command,
        tags=tuple(first.tags) + (f"ranks={len(profiles)}",),
        machine=dict(first.machine),
        config=dict(first.config),
        sample_rate=first.sample_rate,
        samples=samples,
        statics=statics,
        info={
            "combined_from": len(profiles),
            "rank_tx": [p.tx for p in profiles],
            "note": "inter-process communication not captured (§4.5)",
        },
    )
    return combined
