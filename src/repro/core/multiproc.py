"""Multi-process utilities: profile aggregation and parallel fan-out.

§4.5 ("Multiprocessing"): "Synapse can be used to profile and emulate
multi-process and multi-core applications: each process is handled
individually".  Profiling N ranks therefore yields N profiles; replaying
the *application* needs them combined into one.  This module implements
that aggregation:

* cumulative metrics add sample-wise (rank 0's sample *k* plus rank 1's
  sample *k* — the ranks ran concurrently, so equal sample indices cover
  the same wall-clock window);
* level metrics add too (each rank's RSS is resident simultaneously);
* the combined Tx is the *maximum* rank Tx (the application ends when
  its last process exits);
* shorter ranks simply stop contributing past their end.

TCP/MPI communication between the ranks is NOT captured — the paper's
explicit limitation — and the combined profile documents the rank count
in its info for OpenMP/MPI replay configuration.

The module also hosts :func:`parallel_map`, the process-pool fan-out
primitive behind the simulation plane's batch APIs
(:meth:`repro.sim.backend.SimBackend.spawn_many`,
``repro.predict.validate.validate_plan(processes=...)`` and the E7
throughput benchmark): simulated experiments are pure CPU-bound Python,
so many independent emulated runs scale with cores only across
processes.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.core import metrics as _metrics
from repro.core.errors import SynapseError
from repro.core.metrics import MetricKind
from repro.core.samples import Profile, Sample

__all__ = ["combine_process_profiles", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Per-process payload installed by :func:`parallel_map`'s ``shared``
#: argument (one pickle per worker instead of one per item).
_shared_payload: Any = None


def _install_shared(payload: Any) -> None:
    global _shared_payload
    _shared_payload = payload


def get_shared() -> Any:
    """The current :func:`parallel_map` ``shared`` payload (worker side)."""
    return _shared_payload


class _Guard:
    """Worker-side wrapper separating ``fn``'s own exceptions from pool
    infrastructure failures: the former are captured and re-raised in
    the parent (never triggering the serial fallback), only the latter
    reach :func:`parallel_map`'s except clause."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_T], _R]) -> None:
        self.fn = fn

    def __call__(self, item: _T) -> tuple[bool, Any]:
        try:
            return True, self.fn(item)
        except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
            return False, exc


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    processes: int | None = None,
    shared: Any = None,
) -> list[_R]:
    """Order-preserving map over a process pool.

    ``processes=None`` uses all cores; ``processes<=1`` (or a single
    item) runs serially in-process, with no pool overhead.  ``fn`` and
    the items should be picklable (module-level function, plain-data
    arguments) and ``fn`` should be pure: when the *pool* cannot be
    used — forbidden fork, unpicklable ``fn``/items, a worker dying —
    the map falls back to running the whole batch serially,
    re-evaluating ``fn`` from scratch.  Exceptions raised by ``fn``
    itself are not swallowed into that fallback: the first one (in item
    order) re-raises in the parent, exactly like the serial path.

    ``shared`` ships one bulky payload to each worker *once* (pool
    initializer) instead of once per item; workers — and the serial
    path — read it back with :func:`get_shared`.  Use it for payloads
    that are large relative to the items (a workload object fanned out
    over many seeds, a machine table, ...).
    """
    items = list(items)
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(items))
    if processes <= 1:
        return _serial_map(fn, items, shared)
    import concurrent.futures  # noqa: PLC0415 - keep import cost off the serial path
    import pickle  # noqa: PLC0415

    init = _install_shared if shared is not None else None
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=processes,
            initializer=init,
            initargs=(shared,) if init is not None else (),
        ) as pool:
            chunksize = max(1, len(items) // (processes * 4))
            outcomes = list(pool.map(_Guard(fn), items, chunksize=chunksize))
    except (
        OSError,
        RuntimeError,
        pickle.PicklingError,
        AttributeError,
        TypeError,
        concurrent.futures.process.BrokenProcessPool,
    ):
        # Pool infrastructure failed (fn exceptions never land here —
        # _Guard captures them inside the workers).
        return _serial_map(fn, items, shared)
    results: list[_R] = []
    for ok, value in outcomes:
        if not ok:
            raise value
        results.append(value)
    return results


def _serial_map(fn: Callable[[_T], _R], items: list[_T], shared: Any) -> list[_R]:
    if shared is None:
        return [fn(item) for item in items]
    previous = _shared_payload
    _install_shared(shared)
    try:
        return [fn(item) for item in items]
    finally:
        _install_shared(previous)




def combine_process_profiles(profiles: Sequence[Profile]) -> Profile:
    """Merge per-rank profiles of one run into an application profile.

    All profiles must share the same sampling grid (same sample rate);
    the command and machine of the first profile are kept, tags get a
    ``ranks=N`` marker, and ``info["combined_from"]`` records the rank
    count for later parallel replay.
    """
    if not profiles:
        raise SynapseError("cannot combine zero profiles")
    rates = {p.sample_rate for p in profiles}
    if len(rates) > 1:
        raise SynapseError(
            f"per-process profiles have mixed sample rates: {sorted(rates)}"
        )
    first = profiles[0]
    n_samples = max(p.n_samples for p in profiles)

    samples: list[Sample] = []
    for index in range(n_samples):
        values: dict[str, float] = {}
        t = None
        dt = None
        for prof in profiles:
            if index >= prof.n_samples:
                continue
            sample = prof.samples[index]
            if t is None:
                t, dt = sample.t, sample.dt
            for name, value in sample.values.items():
                spec = _metrics.REGISTRY.get(name)
                if spec is not None and spec.kind is MetricKind.LEVEL:
                    values[name] = values.get(name, 0.0) + value
                elif name == "time.runtime":
                    # Wall time is shared, not additive across ranks.
                    values[name] = max(values.get(name, 0.0), value)
                else:
                    values[name] = values.get(name, 0.0) + value
        samples.append(Sample(index=index, t=t or 0.0, dt=dt or 0.0, values=values))

    statics = dict(first.statics)
    # Peak memory across ranks is additive (simultaneously resident).
    for key in ("mem.peak_rusage",):
        total = sum(p.statics.get(key, 0.0) for p in profiles if key in p.statics)
        if total:
            statics[key] = total
    # The combined runtime is the longest rank's runtime.
    runtimes = [
        p.statics.get("time.runtime_rusage", 0.0)
        for p in profiles
        if "time.runtime_rusage" in p.statics
    ]
    if runtimes:
        statics["time.runtime_rusage"] = max(runtimes)

    combined = Profile(
        command=first.command,
        tags=tuple(first.tags) + (f"ranks={len(profiles)}",),
        machine=dict(first.machine),
        config=dict(first.config),
        sample_rate=first.sample_rate,
        samples=samples,
        statics=statics,
        info={
            "combined_from": len(profiles),
            "rank_tx": [p.tx for p in profiles],
            "note": "inter-process communication not captured (§4.5)",
        },
    )
    return combined
