"""The Synapse profiler: spawn, watch, merge, store (§4.1).

The profiler spawns the target through an execution backend, hands the
process handle to the configured watcher plugins, and drives sampling:

* **host plane** — every watcher runs in its own thread (the paper's
  architecture), sampling at the configured rate against the wall clock;
  timestamps of different watchers drift freely;
* **simulation plane** — watchers are driven in lockstep against the
  virtual clock (real threads cannot wait on virtual time), which is
  observationally equivalent up to drift.

Profiling only terminates on full sample periods: after process exit one
final drain sample captures the tail (§4.5 "Overheads" notes the
completion delay this causes at very low rates).  Watcher series are then
merged onto the nominal grid and the profile is optionally stored.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.backend import ExecutionBackend, ProcessHandle
from repro.core.config import SynapseConfig
from repro.core.errors import ProfilingError
from repro.core.samples import Profile
from repro.core.sampling import SamplingPolicy, policy_from_config
from repro.core.tags import normalize_command, normalize_tags
from repro.storage.base import ProfileStore
from repro.telemetry.spans import span
from repro.watchers.base import WatcherBase, WatcherContext, WatcherResult
from repro.watchers.registry import get_watcher

__all__ = ["Profiler", "ProfileRun"]


@dataclass
class ProfileRun:
    """Bookkeeping for one profiling run (returned via ``Profile.info``)."""

    exit_code: int = 0
    watcher_names: tuple[str, ...] = ()
    n_samples: int = 0
    sample_rate: float = 1.0
    first_sample_offset: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)


class Profiler:
    """Profiles targets on one backend with one configuration."""

    def __init__(
        self,
        backend: ExecutionBackend,
        config: SynapseConfig | None = None,
        store: ProfileStore | None = None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else SynapseConfig()
        self.store = store

    # -- public API ---------------------------------------------------------

    def run(
        self,
        target: Any,
        tags: object = None,
        command: str | None = None,
        **spawn_kwargs: Any,
    ) -> Profile:
        """Profile one execution of ``target``; returns the profile.

        ``command`` overrides the profile's index string (useful when the
        target object's own name is not the desired search key).  The
        profile is stored when the profiler has a store.
        """
        with span("profile.run", backend=getattr(self.backend, "name", "?")) as sp:
            profile = self._run(target, tags, command, **spawn_kwargs)
            sp.set(
                command=profile.command,
                samples=profile.n_samples,
                exit_code=int(profile.info.get("exit_code", 0)),
            )
        return profile

    def _run(
        self,
        target: Any,
        tags: object = None,
        command: str | None = None,
        **spawn_kwargs: Any,
    ) -> Profile:
        config = self.config
        policy = policy_from_config(config)

        handle = self.backend.spawn(target, **spawn_kwargs)
        context = WatcherContext(
            config=config,
            machine_info=self.backend.machine_info(),
            backend=self.backend,
        )
        watchers = [
            get_watcher(name)(handle, context) for name in config.watchers
        ]
        for watcher in watchers:
            watcher.pre_process(config)

        t0 = self.backend.now()
        realtime = getattr(self.backend, "name", "") == "host"
        if realtime:
            self._drive_threaded(watchers, handle, policy, t0)
        else:
            self._drive_lockstep(watchers, handle, policy, t0)
        exit_code = handle.wait()

        # Drain: one final sample on the full-period boundary (§4.5).
        if config.drain_final_sample:
            now = self.backend.now() - t0
            counters_many = getattr(handle, "counters_many", None)
            if counters_many is not None and self._batchable(watchers):
                self._sample_batch(watchers, [now], counters_many(np.asarray([now])))
            else:
                for watcher in watchers:
                    self._safe_sample(watcher, now)

        for watcher in watchers:
            watcher.post_process()
        raw = {w.name: w.result for w in watchers}
        results: dict[str, WatcherResult] = {}
        for watcher in watchers:
            try:
                results[watcher.name] = watcher.finalize(raw)
            except Exception as exc:  # noqa: BLE001 - plugin boundary
                watcher.result.info["finalize_error"] = repr(exc)
                results[watcher.name] = watcher.result

        profile = self._build_profile(results, handle, exit_code, command, tags, policy)
        if self.store is not None:
            self.store.put(profile)
        return profile

    def run_repeats(
        self,
        target: Any,
        repeats: int,
        tags: object = None,
        command: str | None = None,
        processes: int | None = None,
        service: Any = None,
    ) -> list[Profile]:
        """Profile ``repeats`` independent executions of ``target``.

        The paper collects multiple profiles per command/tag combination
        for its consistency statistics (E.1, E.3); all repeats share the
        same search key.

        The repeats execute through the run service
        (:mod:`repro.runtime`).  On the simulation plane each repeat
        becomes a declarative profile request carrying the spawn slot it
        would have drawn sequentially, so the service may fan repeats
        across its persistent worker pool (``processes``; ``None`` lets
        the service decide) and the profiles stay bit-identical to
        sequential :meth:`run` calls.  Host-plane and custom backends —
        and profiler subclasses with custom drivers — run serially
        in-parent, exactly as before.
        """
        if repeats < 1:
            raise ProfilingError("repeats must be >= 1")
        import functools  # noqa: PLC0415 - tiny, call-path only

        from repro.runtime.service import RunRequest, get_service  # noqa: PLC0415 (cycle)
        from repro.sim.backend import SimBackend  # noqa: PLC0415 (cycle)

        svc = service if service is not None else get_service()
        backend = self.backend
        # Exact-type checks on purpose: a Profiler or SimBackend
        # *subclass* may override behaviour the declarative request
        # cannot describe, so subclasses take the in-parent call path.
        if type(self) is Profiler and type(backend) is SimBackend:
            # Declarative path: reserve the spawn slots this sequence of
            # run() calls would have used, so later spawns on this
            # backend draw the same seeds either way.
            first_index = backend._spawn_count + 1
            backend._spawn_count += repeats
            requests = [
                RunRequest(
                    kind="profile",
                    target=target,
                    machine=backend.machine,
                    config=self.config,
                    noisy=backend.noisy,
                    seed=backend.seed,
                    index=first_index + offset,
                    tags=tags,
                    command=command,
                )
                for offset in range(repeats)
            ]
            results = svc.run(requests, processes=processes)
            profiles = [result.value for result in results]
            if self.store is not None:
                self.store.put_many(profiles)
            return profiles
        requests = [
            RunRequest(
                kind="call",
                runner=functools.partial(self.run, target, tags=tags, command=command),
            )
            for _ in range(repeats)
        ]
        return [result.value for result in svc.run(requests)]

    # -- sampling drivers -------------------------------------------------------

    @staticmethod
    def _safe_sample(watcher: WatcherBase, now: float) -> None:
        """Sample one watcher, quarantining plugin failures.

        Watchers are third-party extensible plugins (§3.3); one broken
        plugin must not abort the whole profiling run (requirement P.2:
        profiling must not influence the profiled execution).  Failures
        are counted in the watcher's result info and the plugin keeps
        being sampled — transient `/proc` races recover on their own.
        """
        try:
            watcher.sample(now)
        except Exception as exc:  # noqa: BLE001 - plugin boundary
            errors = watcher.result.info.setdefault("sample_errors", [])
            if len(errors) < 16:
                errors.append(f"{now:.3f}s: {exc!r}")

    def _drive_lockstep(
        self,
        watchers: list[WatcherBase],
        handle: ProcessHandle,
        policy: SamplingPolicy,
        t0: float,
    ) -> None:
        """Single-threaded sampling loop (simulation plane)."""
        if self._drive_grid(watchers, handle, policy, t0):
            return
        while handle.alive():
            elapsed = self.backend.now() - t0
            self.backend.sleep(policy.interval_at(elapsed))
            now = self.backend.now() - t0
            for watcher in watchers:
                self._safe_sample(watcher, now)

    def _drive_grid(
        self,
        watchers: list[WatcherBase],
        handle: ProcessHandle,
        policy: SamplingPolicy,
        t0: float,
    ) -> bool:
        """Sim-plane fast path: sample the whole policy grid in one shot.

        A sim process's history is precomputed, so instead of stepping
        the virtual clock sample by sample (one full counter snapshot
        per watcher per step) the sample grid is materialised up front,
        every counter series is interpolated over it in one vectorised
        pass (:meth:`SimProcess.counters_many`), and the arrays are
        handed to the watchers in batch.  The grid replicates the
        lockstep loop's clock arithmetic exactly, so sample timestamps —
        and therefore profiles — are identical to the scalar driver's.

        Returns False (caller falls back to lockstep stepping) when the
        handle cannot batch-evaluate or any watcher has custom
        per-sample behaviour without a matching batch implementation.
        """
        counters_many = getattr(handle, "counters_many", None)
        end_time = getattr(handle, "end_time", None)
        clock = getattr(self.backend, "clock", None)
        if counters_many is None or end_time is None or clock is None:
            return False
        if not self._batchable(watchers):
            return False

        # Replicate the lockstep loop: check liveness, advance by the
        # policy interval, sample — so the final sample lands on the
        # first full period at or past process exit (§4.5).
        times: list[float] = []
        now = self.backend.now()
        while now < end_time:
            elapsed = now - t0
            now = now + policy.interval_at(elapsed)
            times.append(now - t0)
        clock.advance_to(now)
        if times:
            self._sample_batch(watchers, times, counters_many(np.asarray(times)))
        return True

    @staticmethod
    def _batchable(watchers: list[WatcherBase]) -> bool:
        """Whether every watcher can be driven through ``sample_batch``.

        A watcher that customises per-sample behaviour without providing
        a matching batch implementation must keep being driven through
        its own :meth:`~WatcherBase.sample`.
        """
        for watcher in watchers:
            cls = type(watcher)
            if (
                cls.sample is not WatcherBase.sample
                and cls.sample_batch is WatcherBase.sample_batch
            ):
                return False
        return True

    @staticmethod
    def _sample_batch(
        watchers: list[WatcherBase],
        times: list[float],
        counters: dict[str, Any],
    ) -> None:
        """Feed one batch of samples to every watcher, quarantining
        plugin failures exactly like :meth:`_safe_sample`."""
        for watcher in watchers:
            try:
                watcher.sample_batch(times, counters)
            except Exception as exc:  # noqa: BLE001 - plugin boundary
                errors = watcher.result.info.setdefault("sample_errors", [])
                if len(errors) < 16:
                    errors.append(f"batch[{len(times)}]: {exc!r}")

    def _drive_threaded(
        self,
        watchers: list[WatcherBase],
        handle: ProcessHandle,
        policy: SamplingPolicy,
        t0: float,
    ) -> None:
        """One sampling thread per watcher (host plane, §4.1)."""
        stop = threading.Event()

        def loop(watcher: WatcherBase) -> None:
            while not stop.is_set():
                now = self.backend.now() - t0
                self._safe_sample(watcher, now)
                stop.wait(policy.interval_at(now))

        threads = [
            threading.Thread(target=loop, args=(w,), daemon=True, name=f"watcher-{w.name}")
            for w in watchers
        ]
        for thread in threads:
            thread.start()
        try:
            while handle.alive():
                elapsed = self.backend.now() - t0
                self.backend.sleep(policy.interval_at(elapsed) / 2.0)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)

    # -- profile assembly ----------------------------------------------------------

    def _build_profile(
        self,
        results: dict[str, WatcherResult],
        handle: ProcessHandle,
        exit_code: int,
        command: str | None,
        tags: object,
        policy: SamplingPolicy,
    ) -> Profile:
        config = self.config
        cumulative: dict[str, Any] = {}
        levels: dict[str, Any] = {}
        statics: dict[str, Any] = {}
        info: dict[str, Any] = {"exit_code": exit_code, "backend": self.backend.name}
        watcher_times: dict[str, list[float]] = {}
        first_offsets: list[float] = []
        for name, result in results.items():
            cumulative.update(result.cumulative)
            levels.update(result.levels)
            statics.update(result.statics)
            if result.info:
                info[f"watcher.{name}"] = result.info
            if result.timestamps:
                watcher_times[name] = result.timestamps
                first_offsets.append(result.timestamps[0])

        runtime = statics.get("time.runtime_rusage")
        if runtime is None:
            runtime = max(
                (s.times[-1] for s in list(cumulative.values()) + list(levels.values()) if len(s)),
                default=0.0,
            )
        grid = policy.grid(runtime)
        samples = Profile.merge_watcher_series(grid, cumulative, levels, watcher_times)

        info["run"] = {
            "n_samples": len(grid),
            "sample_rate": config.sample_rate,
            "sampling": policy.describe(),
            "first_sample_offset": min(first_offsets) if first_offsets else 0.0,
            "watchers": list(config.watchers),
        }
        handle_info = handle.info()
        if handle_info:
            info["process"] = handle_info

        return Profile(
            command=command if command is not None else _target_command(handle, info),
            tags=normalize_tags(tags),
            machine=dict(self.backend.machine_info()),
            config=config.to_dict(),
            sample_rate=config.sample_rate,
            samples=samples,
            statics=statics,
            info=info,
        )


def _target_command(handle: ProcessHandle, info: dict[str, Any]) -> str:
    """Best-effort command string for handles that know their target."""
    meta = info.get("process", {}).get("metadata")
    if isinstance(meta, dict) and "command" in meta:
        return str(meta["command"])
    record = getattr(handle, "record", None)
    if record is not None and getattr(record, "metadata", None) is not None:
        name = record.metadata.get("workload_name")
        if name:
            return normalize_command(name)
    return "unknown"
