"""Public API: ``profile`` and ``emulate`` (§4 of the paper).

The original module exposes::

    radical.synapse.profile(command, tags=None)
    radical.synapse.emulate(command, tags=None)

This reproduction keeps those two calls (plus ``stats``) and generalises
the target: a shell command string, a Python callable, or — on the
simulation plane — an application model / workload, with the backend
selecting the plane.

On top of the paper's pair, :func:`predict` and :func:`place` expose the
prediction & placement subsystem (:mod:`repro.predict`): analytical
runtime prediction of stored profiles on machines they never ran on, and
placement planning of task sets across heterogeneous machine sets.

All execution funnels through the unified run service
(:mod:`repro.runtime`): ``profile(repeats=...)``, ``emulate`` and plan
validation submit run requests to one persistent-pool runtime, and
:func:`campaign` exposes its declarative sweep layer (apps x machines x
seeds x repeats with a resumable on-store ledger, shardable across
hosts).  :func:`campaign_report` aggregates a finished ledger into the
paper's consistency/error tables.
"""

from __future__ import annotations

from typing import Any

from repro.apps.base import ApplicationModel
from repro.core.backend import ExecutionBackend
from repro.core.config import SynapseConfig
from repro.core.emulator import EmulationResult, Emulator
from repro.core.errors import WorkloadError
from repro.core.profiler import Profiler
from repro.core.samples import Profile
from repro.core.statistics import ProfileStats, aggregate
from repro.core.tags import normalize_command, normalize_tags
from repro.sim.workload import SimWorkload
from repro.storage.base import ProfileStore

__all__ = [
    "profile",
    "emulate",
    "stats",
    "predict",
    "place",
    "campaign",
    "campaign_report",
    "traffic",
    "default_backend_for",
]


def default_backend_for(target: Any) -> ExecutionBackend:
    """Pick the natural backend for a profiling target.

    Shell commands and Python callables run on the host plane;
    application models and sim workloads need an explicit
    :class:`~repro.sim.backend.SimBackend` (there is no default machine
    to guess).
    """
    if isinstance(target, (str, list, tuple)) or callable(target):
        from repro.host.backend import HostBackend  # noqa: PLC0415 (lazy)

        return HostBackend()
    raise WorkloadError(
        f"no default backend for {type(target).__name__}; pass "
        "backend=SimBackend(machine) for application models"
    )


def profile(
    target: Any,
    tags: object = None,
    *,
    backend: ExecutionBackend | None = None,
    config: SynapseConfig | None = None,
    store: ProfileStore | None = None,
    command: str | None = None,
    repeats: int = 1,
) -> Profile | list[Profile]:
    """Profile ``target``; returns one profile (or a list for repeats).

    ``target`` is a shell command, Python callable, application model or
    sim workload.  Profiles are written to ``store`` when given.  For
    application models, command and tags default to the model's own
    ``command()`` / ``tags()``.
    """
    if backend is None:
        backend = default_backend_for(target)
    if isinstance(target, ApplicationModel):
        if command is None:
            command = target.command()
        if tags is None:
            tags = target.tags()
    elif isinstance(target, SimWorkload):
        if command is None:
            command = target.name
    elif command is None:
        command = normalize_command(target)
    profiler = Profiler(backend, config=config, store=store)
    if repeats == 1:
        return profiler.run(target, tags=tags, command=command)
    return profiler.run_repeats(target, repeats, tags=tags, command=command)


def emulate(
    source: Any,
    tags: object = None,
    *,
    backend: ExecutionBackend | None = None,
    config: SynapseConfig | None = None,
    store: ProfileStore | None = None,
) -> EmulationResult:
    """Emulate a profile, plan, or stored command/tag combination.

    With a string ``source`` the profile is looked up in ``store`` by
    command and tags, exactly like the paper's ``emulate(command, tags)``.
    Without a backend the emulation runs on the host plane.
    """
    emulator = Emulator(backend=backend, config=config, store=store)
    return emulator.run(source, tags=tags)


def stats(
    command: Any,
    tags: object = None,
    *,
    store: ProfileStore,
) -> ProfileStats:
    """Aggregate statistics over all stored profiles of one command/tags."""
    profiles = store.find(normalize_command(command), normalize_tags(tags))
    return aggregate(profiles)


def predict(
    source: Any,
    machines: Any,
    *,
    tags: object = None,
    query: Any = None,
    store: ProfileStore | None = None,
    predictor: Any = None,
):
    """Predict the runtime of a workload on machines it never ran on.

    ``source`` is a demand vector, a :class:`Profile`, a list of
    profiles (aggregated to their mean demand), or a command string
    looked up in ``store`` by command/tags/Mongo-``query`` — the
    placement-paper analogue of ``emulate(command, tags)``.  ``machines``
    is one machine (name or spec) for a single
    :class:`~repro.predict.predictor.Prediction`, or a sequence for a
    ``{machine name: Prediction}`` mapping.
    """
    from repro.predict.models import (  # noqa: PLC0415 (lazy)
        DemandVector,
        demand_vector,
        demand_vector_from_profiles,
        extract,
    )
    from repro.predict.predictor import Predictor  # noqa: PLC0415 (lazy)

    if isinstance(source, DemandVector):
        vector = source
    elif isinstance(source, Profile):
        vector = demand_vector(source)
    elif isinstance(source, (list, tuple)) and source and all(
        isinstance(item, Profile) for item in source
    ):
        vector = demand_vector_from_profiles(source)
    elif isinstance(source, str):
        if store is None:
            raise WorkloadError("predicting a stored command needs a store")
        vector = extract(store, source, tags, query=query)
    else:
        raise WorkloadError(
            f"cannot predict {type(source).__name__}; expected a DemandVector, "
            "Profile, list of Profiles, or stored command string"
        )
    predictor = predictor if predictor is not None else Predictor()
    if isinstance(machines, (str,)) or hasattr(machines, "cpu"):
        return predictor.predict(vector, machines)
    machines = list(machines)
    if not machines:
        raise WorkloadError("cannot predict onto an empty machine set")
    predictions = [predictor.predict(vector, m) for m in machines]
    names = [p.machine for p in predictions]
    if len(set(names)) != len(names):
        raise WorkloadError(
            "machine names must be unique to key a prediction mapping; "
            "rename replace()'d variants before comparing them"
        )
    return dict(zip(names, predictions))


def _resolve_campaign_spec(spec: Any):
    import os  # noqa: PLC0415 (lazy)

    from repro.runtime.campaign import CampaignSpec  # noqa: PLC0415 (lazy)

    if isinstance(spec, (str, os.PathLike)):
        return CampaignSpec.from_json(spec)
    return spec


def campaign(
    spec: Any,
    *,
    store: ProfileStore,
    processes: int | None = None,
    limit: int | None = None,
    shard: Any = None,
):
    """Run (or resume) a declarative experiment campaign.

    ``spec`` is a :class:`~repro.runtime.campaign.CampaignSpec`, a
    spec dict, or a path to a spec JSON file.  The sweep (apps x
    machines x seeds x repeats) executes through the shared run service
    and records every cell in ``store``; cells already present are
    skipped, so interrupted campaigns resume where they stopped.
    ``shard=(i, n)`` (or ``"i/n"``) executes only this host's
    digest-assigned partition of the pending cells, so several hosts
    sharing one store split the sweep between them.
    Returns the :class:`~repro.runtime.campaign.CampaignReport`.
    """
    from repro.runtime.campaign import run_campaign  # noqa: PLC0415 (lazy)

    return run_campaign(
        _resolve_campaign_spec(spec), store,
        processes=processes, limit=limit, shard=shard,
    )


def campaign_report(
    spec: Any,
    *,
    store: ProfileStore,
    reference: str | None = None,
):
    """Aggregate a campaign's ledger into the paper-style analysis.

    Per ``app x machine`` group: mean/std/CV of durations over the
    group's cells, relative errors of every counter against the
    ``reference`` machine's means (default: the spec's first machine),
    and the sampling-overhead columns.  Returns the
    :class:`~repro.runtime.analyze.CampaignAnalysis`; render it with
    ``.table()``, ``.to_dict()`` or ``.to_csv()``.
    """
    from repro.runtime.analyze import analyze_campaign  # noqa: PLC0415 (lazy)

    return analyze_campaign(
        _resolve_campaign_spec(spec), store, reference=reference
    )


def traffic(
    process: Any,
    machines: Any,
    *,
    requests: int,
    mix: Any = None,
    discipline: str = "fifo",
    dispatch: str = "eft",
    alloc_cost: float = 0.0,
    engine: bool = True,
    autoscale: Any = None,
    closed_loop: int | None = None,
    think: float = 0.1,
    chunk: int = 8192,
    seed: int = 0,
    keep_records: bool = False,
):
    """Simulate serving traffic through a queue-aware machine fleet.

    ``process`` is an :class:`~repro.traffic.arrivals.ArrivalProcess` or
    a spec string (``"poisson:rate=500"``, ``"mmpp:rates=50/500"``,
    ``"diurnal:rate=200,amplitude=0.8"``, ``"trace:<path>"``); it drives
    an **open-loop** run unless ``closed_loop=N`` switches to a closed
    loop of ``N`` clients with exponential ``think`` time (the arrival
    process is then unused — arrivals come from request completions).
    ``autoscale`` is an :class:`~repro.traffic.sim.AutoscalePolicy` to
    scale the fleet against a p99 SLO in-sim.  Returns the
    :class:`~repro.traffic.sim.TrafficReport` (render with
    ``.table()``/``.to_dict()``).
    """
    from repro.traffic.sim import ClosedLoopSim, TrafficSim  # noqa: PLC0415 (lazy)

    if closed_loop is not None:
        sim = ClosedLoopSim(
            machines,
            mix,
            clients=closed_loop,
            think=think,
            dispatch=dispatch,
            alloc_cost=alloc_cost,
            engine=engine,
            keep_records=keep_records,
            seed=seed,
        )
        return sim.run(requests)
    sim = TrafficSim(
        process,
        machines,
        mix,
        discipline=discipline,
        dispatch=dispatch,
        alloc_cost=alloc_cost,
        engine=engine,
        autoscale=autoscale,
        keep_records=keep_records,
        seed=seed,
    )
    return sim.run(requests, chunk=chunk)


def place(
    source: Any,
    machines: Any,
    *,
    method: str = "eft",
    refine: bool = True,
    validate: bool = False,
    predictor: Any = None,
):
    """Plan the placement of a task set across heterogeneous machines.

    ``source`` is a list of :class:`~repro.predict.models.Task`, an
    :class:`~repro.apps.ensemble.EnsembleApp`, or a
    :class:`~repro.apps.skeleton.SkeletonApp` (decomposed automatically).
    Returns a :class:`~repro.predict.placement.PlacementPlan`; with
    ``validate=True`` returns ``(plan, report)`` where the report replays
    the plan on the simulation plane (E.1/E.2-style accuracy check).
    """
    from repro.predict.models import (  # noqa: PLC0415 (lazy)
        Task,
        tasks_from_ensemble,
        tasks_from_skeleton,
    )
    from repro.predict.placement import plan as plan_tasks  # noqa: PLC0415 (lazy)
    from repro.predict.validate import validate_plan  # noqa: PLC0415 (lazy)

    machines = (
        [machines] if isinstance(machines, str) or hasattr(machines, "cpu")
        else list(machines)
    )
    tasks = source
    if not isinstance(source, (list, tuple)):
        from repro.apps.ensemble import EnsembleApp  # noqa: PLC0415 (lazy)
        from repro.apps.skeleton import SkeletonApp  # noqa: PLC0415 (lazy)

        if isinstance(source, EnsembleApp):
            tasks = tasks_from_ensemble(source)
        elif isinstance(source, SkeletonApp):
            tasks = tasks_from_skeleton(source)
        else:
            raise WorkloadError(
                f"cannot place {type(source).__name__}; expected a task list, "
                "EnsembleApp or SkeletonApp"
            )
    elif not all(isinstance(item, Task) for item in tasks):
        raise WorkloadError("task lists must contain only predict.Task items")
    result = plan_tasks(
        tasks, machines, method=method, refine=refine, predictor=predictor
    )
    if not validate:
        return result
    report = validate_plan(
        result,
        tasks,
        machines=machines,
        calibrated=bool(getattr(predictor, "calibrated", False)),
    )
    return result, report
