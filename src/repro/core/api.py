"""Public API: ``profile`` and ``emulate`` (§4 of the paper).

The original module exposes::

    radical.synapse.profile(command, tags=None)
    radical.synapse.emulate(command, tags=None)

This reproduction keeps those two calls (plus ``stats``) and generalises
the target: a shell command string, a Python callable, or — on the
simulation plane — an application model / workload, with the backend
selecting the plane.
"""

from __future__ import annotations

from typing import Any

from repro.apps.base import ApplicationModel
from repro.core.backend import ExecutionBackend
from repro.core.config import SynapseConfig
from repro.core.emulator import EmulationResult, Emulator
from repro.core.errors import WorkloadError
from repro.core.profiler import Profiler
from repro.core.samples import Profile
from repro.core.statistics import ProfileStats, aggregate
from repro.core.tags import normalize_command, normalize_tags
from repro.sim.workload import SimWorkload
from repro.storage.base import ProfileStore

__all__ = ["profile", "emulate", "stats", "default_backend_for"]


def default_backend_for(target: Any) -> ExecutionBackend:
    """Pick the natural backend for a profiling target.

    Shell commands and Python callables run on the host plane;
    application models and sim workloads need an explicit
    :class:`~repro.sim.backend.SimBackend` (there is no default machine
    to guess).
    """
    if isinstance(target, (str, list, tuple)) or callable(target):
        from repro.host.backend import HostBackend  # noqa: PLC0415 (lazy)

        return HostBackend()
    raise WorkloadError(
        f"no default backend for {type(target).__name__}; pass "
        "backend=SimBackend(machine) for application models"
    )


def profile(
    target: Any,
    tags: object = None,
    *,
    backend: ExecutionBackend | None = None,
    config: SynapseConfig | None = None,
    store: ProfileStore | None = None,
    command: str | None = None,
    repeats: int = 1,
) -> Profile | list[Profile]:
    """Profile ``target``; returns one profile (or a list for repeats).

    ``target`` is a shell command, Python callable, application model or
    sim workload.  Profiles are written to ``store`` when given.  For
    application models, command and tags default to the model's own
    ``command()`` / ``tags()``.
    """
    if backend is None:
        backend = default_backend_for(target)
    if isinstance(target, ApplicationModel):
        if command is None:
            command = target.command()
        if tags is None:
            tags = target.tags()
    elif isinstance(target, SimWorkload):
        if command is None:
            command = target.name
    elif command is None:
        command = normalize_command(target)
    profiler = Profiler(backend, config=config, store=store)
    if repeats == 1:
        return profiler.run(target, tags=tags, command=command)
    return profiler.run_repeats(target, repeats, tags=tags, command=command)


def emulate(
    source: Any,
    tags: object = None,
    *,
    backend: ExecutionBackend | None = None,
    config: SynapseConfig | None = None,
    store: ProfileStore | None = None,
) -> EmulationResult:
    """Emulate a profile, plan, or stored command/tag combination.

    With a string ``source`` the profile is looked up in ``store`` by
    command and tags, exactly like the paper's ``emulate(command, tags)``.
    Without a backend the emulation runs on the host plane.
    """
    emulator = Emulator(backend=backend, config=config, store=store)
    return emulator.run(source, tags=tags)


def stats(
    command: Any,
    tags: object = None,
    *,
    store: ProfileStore,
) -> ProfileStats:
    """Aggregate statistics over all stored profiles of one command/tags."""
    profiles = store.find(normalize_command(command), normalize_tags(tags))
    return aggregate(profiles)
