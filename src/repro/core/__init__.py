"""Core library: profile/emulate API, data model, profiler, emulator."""

from repro.core.api import emulate, place, predict, profile, stats, traffic
from repro.core.backend import ExecutionBackend, ProcessHandle
from repro.core.compare import ComparisonRow, ProfileComparison
from repro.core.config import SynapseConfig
from repro.core.emulator import EmulationResult, Emulator
from repro.core.errors import (
    BackendError,
    CalibrationError,
    ConfigError,
    DocumentTooLargeError,
    EmulationError,
    ProfileNotFoundError,
    ProfilingError,
    StoreError,
    SynapseError,
    WorkloadError,
)
from repro.core.metrics import REGISTRY, MetricKind, MetricSpec, Support, derive_metrics
from repro.core.multiproc import combine_process_profiles
from repro.core.plan import EmulationPlan, PlanSample
from repro.core.profiler import Profiler
from repro.core.samples import Profile, Sample
from repro.core.sampling import AdaptiveRate, ConstantRate, SamplingPolicy
from repro.core.statistics import MetricStats, ProfileStats, aggregate, error_percent

__all__ = [
    "AdaptiveRate",
    "BackendError",
    "CalibrationError",
    "ComparisonRow",
    "ConfigError",
    "ConstantRate",
    "DocumentTooLargeError",
    "EmulationError",
    "EmulationPlan",
    "EmulationResult",
    "Emulator",
    "ExecutionBackend",
    "MetricKind",
    "MetricSpec",
    "MetricStats",
    "PlanSample",
    "ProcessHandle",
    "Profile",
    "ProfileComparison",
    "ProfileNotFoundError",
    "ProfileStats",
    "Profiler",
    "ProfilingError",
    "REGISTRY",
    "Sample",
    "SamplingPolicy",
    "StoreError",
    "Support",
    "SynapseConfig",
    "SynapseError",
    "WorkloadError",
    "aggregate",
    "combine_process_profiles",
    "derive_metrics",
    "emulate",
    "error_percent",
    "place",
    "traffic",
    "predict",
    "profile",
    "stats",
]
