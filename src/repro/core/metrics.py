"""Metric registry and derived-metric computation.

This module encodes Table 1 of the paper verbatim: every metric Synapse
knows about, which resource it belongs to, and whether it is *totalled*
over the runtime, *sampled* over time, *derived* from other metrics, and
*emulated*.  Flags use the paper's four states:

* ``YES``      — fully supported (``+`` in the table);
* ``NO``       — not supported (``-``);
* ``PARTIAL``  — partially supported (``(+)``);
* ``PLANNED``  — planned future work (``(-)``).

Derived metrics (§4.3) are computed here from profile totals:

* ``efficiency  = cycles_used / (cycles_used + cycles_stalled)``
* ``utilization = cycles_used / cycles_max`` with
  ``cycles_max = runtime * clock_frequency``
* ``ipc         = instructions / cycles_used`` (the Fig 11 instruction rate)
* ``flop_rate   = flops / runtime``
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "Support",
    "MetricKind",
    "MetricSpec",
    "REGISTRY",
    "metric",
    "metric_names",
    "cumulative_metrics",
    "level_metrics",
    "derive_metrics",
    "table1_rows",
]


class Support(enum.Enum):
    """Support level of a metric capability, as printed in Table 1."""

    YES = "+"
    NO = "-"
    PARTIAL = "(+)"
    PLANNED = "(-)"

    def __str__(self) -> str:
        return self.value


class MetricKind(enum.Enum):
    """How sample values of a metric combine into a profile total."""

    #: Monotone counter; samples hold per-interval deltas; total = sum.
    CUMULATIVE = "cumulative"
    #: Instantaneous level (RSS, load); total = maximum observed.
    LEVEL = "level"
    #: Constant for the whole run (core count, filesystem name).
    STATIC = "static"
    #: Computed from other totals; never sampled directly.
    DERIVED = "derived"


@dataclass(frozen=True)
class MetricSpec:
    """One row of Table 1."""

    name: str
    resource: str
    label: str
    kind: MetricKind
    totalled: Support
    sampled: Support
    derived: Support
    emulated: Support
    unit: str = ""

    @property
    def numeric(self) -> bool:
        """Whether values are numbers (the filesystem name, e.g., is not)."""
        return self.unit != "name"


def _spec(name, resource, label, kind, tot, samp, der, emul, unit=""):
    return MetricSpec(name, resource, label, kind, tot, samp, der, emul, unit)


_Y, _N, _P, _PL = Support.YES, Support.NO, Support.PARTIAL, Support.PLANNED
_C, _L, _S, _D = (
    MetricKind.CUMULATIVE,
    MetricKind.LEVEL,
    MetricKind.STATIC,
    MetricKind.DERIVED,
)

#: The full metric inventory, in the paper's row order.
REGISTRY: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in [
        # --- System ---------------------------------------------------------
        _spec("sys.cores", "System", "number of cores", _S, _Y, _N, _N, _N, "cores"),
        _spec("sys.cpu_freq", "System", "max CPU frequency", _S, _Y, _N, _N, _N, "Hz"),
        _spec("sys.memory", "System", "total memory", _S, _Y, _N, _N, _N, "B"),
        _spec("time.runtime", "System", "runtime", _C, _Y, _Y, _N, _N, "s"),
        _spec("sys.load_cpu", "System", "system load (CPU)", _L, _Y, _N, _N, _Y, ""),
        _spec("sys.load_disk", "System", "system load (disk)", _L, _N, _N, _N, _Y, ""),
        _spec("sys.load_mem", "System", "system load (memory)", _L, _N, _N, _N, _Y, ""),
        # --- Compute ---------------------------------------------------------
        _spec("cpu.instructions", "Compute", "CPU instructions", _C, _Y, _Y, _N, _Y, "ops"),
        _spec("cpu.cycles_used", "Compute", "cycles used", _C, _Y, _Y, _N, _Y, "cycles"),
        _spec(
            "cpu.cycles_stalled_back",
            "Compute",
            "cycles stalled backend",
            _C, _Y, _Y, _N, _N, "cycles",
        ),
        _spec(
            "cpu.cycles_stalled_front",
            "Compute",
            "cycles stalled frontend",
            _C, _Y, _Y, _N, _N, "cycles",
        ),
        _spec("cpu.efficiency", "Compute", "efficiency", _D, _Y, _Y, _Y, _P, ""),
        _spec("cpu.utilization", "Compute", "utilization", _D, _Y, _Y, _Y, _N, ""),
        _spec("cpu.flops", "Compute", "FLOPs", _C, _Y, _Y, _Y, _Y, "flop"),
        _spec("cpu.flop_rate", "Compute", "FLOP/s", _D, _Y, _Y, _Y, _N, "flop/s"),
        _spec("cpu.threads", "Compute", "number of threads", _L, _Y, _N, _N, _P, ""),
        _spec("cpu.openmp", "Compute", "OpenMP", _S, _P, _N, _N, _Y, ""),
        # --- Storage ---------------------------------------------------------
        _spec("io.bytes_read", "Storage", "bytes read", _C, _Y, _Y, _N, _Y, "B"),
        _spec("io.bytes_written", "Storage", "bytes written", _C, _Y, _Y, _N, _Y, "B"),
        _spec("io.block_size_read", "Storage", "block size read", _L, _N, _P, _N, _Y, "B"),
        _spec("io.block_size_write", "Storage", "block size write", _L, _N, _P, _N, _Y, "B"),
        _spec("io.filesystem", "Storage", "used file system", _S, _Y, _N, _N, _Y, "name"),
        # --- Memory ----------------------------------------------------------
        _spec("mem.peak", "Memory", "bytes peak", _L, _Y, _Y, _N, _N, "B"),
        _spec("mem.rss", "Memory", "bytes resident size", _L, _Y, _Y, _N, _N, "B"),
        _spec("mem.allocated", "Memory", "bytes allocated", _C, _Y, _Y, _Y, _Y, "B"),
        _spec("mem.freed", "Memory", "bytes freed", _C, _Y, _Y, _Y, _Y, "B"),
        _spec("mem.block_size_alloc", "Memory", "block size alloc", _L, _N, _PL, _N, _PL, "B"),
        _spec("mem.block_size_free", "Memory", "block size free", _L, _N, _PL, _N, _PL, "B"),
        # --- Network ----------------------------------------------------------
        _spec("net.endpoint", "Network", "connection endpoint", _S, _PL, _PL, _N, _P, "name"),
        _spec("net.bytes_read", "Network", "bytes read", _C, _PL, _PL, _N, _P, "B"),
        _spec("net.bytes_written", "Network", "bytes written", _C, _PL, _PL, _N, _P, "B"),
        _spec("net.block_size_read", "Network", "block size read", _L, _N, _PL, _N, _PL, "B"),
        _spec("net.block_size_write", "Network", "block size write", _L, _N, _PL, _N, _PL, "B"),
    ]
}


def metric(name: str) -> MetricSpec:
    """Look up a metric spec by name (raises ``KeyError`` for unknown)."""
    return REGISTRY[name]


def metric_names() -> list[str]:
    """All registered metric names, in Table 1 order."""
    return list(REGISTRY)


def cumulative_metrics() -> list[str]:
    """Names of metrics whose samples are per-interval deltas."""
    return [n for n, s in REGISTRY.items() if s.kind is MetricKind.CUMULATIVE]


def level_metrics() -> list[str]:
    """Names of metrics whose samples are instantaneous levels."""
    return [n for n, s in REGISTRY.items() if s.kind is MetricKind.LEVEL]


def derive_metrics(totals: Mapping[str, float]) -> dict[str, float]:
    """Compute the derived metrics of §4.3 from profile totals.

    Missing inputs simply omit the corresponding derived value — e.g. a
    profile recorded without the CPU watcher has no efficiency.
    """
    derived: dict[str, float] = {}
    used = totals.get("cpu.cycles_used")
    stalled_f = totals.get("cpu.cycles_stalled_front", 0.0)
    stalled_b = totals.get("cpu.cycles_stalled_back", 0.0)
    if used is not None and used >= 0:
        spent = used + stalled_f + stalled_b
        if spent > 0:
            derived["cpu.efficiency"] = used / spent
    runtime = totals.get("time.runtime")
    freq = totals.get("sys.cpu_freq")
    if used is not None and runtime and freq:
        cycles_max = runtime * freq
        if cycles_max > 0:
            derived["cpu.utilization"] = used / cycles_max
    instructions = totals.get("cpu.instructions")
    if instructions is not None and used:
        derived["cpu.ipc"] = instructions / used
    flops = totals.get("cpu.flops")
    if flops is not None and runtime:
        derived["cpu.flop_rate"] = flops / runtime
    return derived


def table1_rows() -> list[tuple[str, str, str, str, str, str]]:
    """Render Table 1 rows: (resource, metric, Tot., Sampl., Der., Emul.)."""
    rows = []
    for spec in REGISTRY.values():
        rows.append(
            (
                spec.resource,
                spec.label,
                str(spec.totalled),
                str(spec.sampled),
                str(spec.derived),
                str(spec.emulated),
            )
        )
    return rows
