"""Execution backend protocol: the seam between planes.

The profiler and the emulator are written once against these two
interfaces; swapping the backend swaps the world underneath:

* :class:`~repro.host.backend.HostBackend` — real processes on this
  Linux machine, observed through ``/proc`` and ``getrusage`` (what the
  original Synapse does);
* :class:`~repro.sim.backend.SimBackend` — virtual processes on a
  calibrated machine model with a virtual clock (how this reproduction
  regenerates the paper's cross-machine experiments).

A *process handle* exposes the black-box view both planes share: a pid,
liveness, a snapshot of cumulative counters, and final rusage totals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = ["ProcessHandle", "ExecutionBackend"]


class ProcessHandle(ABC):
    """Black-box view of one running (or finished) process."""

    pid: int = -1

    @abstractmethod
    def alive(self) -> bool:
        """Whether the process is still running."""

    @abstractmethod
    def wait(self) -> int:
        """Block until the process exits; returns its exit code."""

    @abstractmethod
    def counters(self) -> dict[str, float]:
        """Snapshot of cumulative counters / levels at the current time.

        Keys are metric names from :mod:`repro.core.metrics`.  Watchers
        never see anything else: this dict *is* the `/proc` + ``perf``
        surface.
        """

    @abstractmethod
    def rusage(self) -> dict[str, float]:
        """Final resource-usage totals (valid after :meth:`wait`).

        The ``time -v`` / ``getrusage`` analogue: wall runtime, CPU times
        and peak RSS, used to correct sampling-offset effects (§4.1).
        """

    def info(self) -> dict[str, Any]:
        """Static per-process information (defaults to empty)."""
        return {}


class ExecutionBackend(ABC):
    """A place where processes run and time passes."""

    name: str = "abstract"

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic within the backend)."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` of backend time pass."""

    @abstractmethod
    def spawn(self, target: Any, **kwargs: Any) -> ProcessHandle:
        """Start executing ``target``; returns its handle immediately."""

    @abstractmethod
    def machine_info(self) -> dict[str, Any]:
        """Description of the machine processes run on (profile metadata)."""
