"""Global Synapse configuration.

A single :class:`SynapseConfig` object travels through the profiler and
the emulator.  It captures every tunable the paper exposes:

* the profiler sampling rate (max 10 Hz — the ``perf stat`` limit, §4.1);
* the compute kernel used for emulation (default ``"asm"``, §4.2);
* I/O block sizes and target filesystem for the storage atom (E.5);
* OpenMP thread / MPI process counts for parallel emulation (E.4);
* artificial background loads (§4.3, "stress"-like);
* the optional CPU efficiency target (Table 1 lists efficiency emulation
  as partially supported: it is a manual tunable).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ConfigError
from repro.util.units import parse_bytes

__all__ = ["SynapseConfig", "MAX_SAMPLE_RATE", "DEFAULT_WATCHERS", "DEFAULT_ATOMS"]

#: Hard upper bound on the profiler sampling rate (Hz).  The paper caps at
#: one sample per 100 ms because ``perf stat`` cannot sample faster.
MAX_SAMPLE_RATE = 10.0

#: Watchers enabled by default, mirroring Fig 1 of the paper.
DEFAULT_WATCHERS = ("system", "cpu", "memory", "storage", "rusage")

#: Emulation atoms enabled by default.
DEFAULT_ATOMS = ("compute", "memory", "storage")


@dataclass
class SynapseConfig:
    """Tunables for profiling and emulation runs.

    All byte-size fields accept either integers or strings like ``"4KB"``.
    Validation happens in ``__post_init__`` so an invalid configuration
    fails at construction, not mid-run.
    """

    # --- profiling ---------------------------------------------------------
    sample_rate: float = 1.0
    watchers: tuple[str, ...] = DEFAULT_WATCHERS
    #: Extra settle time (s) the profiler waits after process exit so that
    #: the final, partial sample period completes (§4.5 "Overheads").
    drain_final_sample: bool = True
    #: Sampling policy: ``"constant"`` (fixed ``sample_rate``) or
    #: ``"adaptive"`` (§6 future work: high-rate startup capture that
    #: settles to ``sample_rate`` after ``adaptive_settle_seconds``).
    sampling_policy: str = "constant"
    adaptive_initial_rate: float = MAX_SAMPLE_RATE
    adaptive_settle_seconds: float = 5.0

    # --- emulation ---------------------------------------------------------
    atoms: tuple[str, ...] = DEFAULT_ATOMS
    compute_kernel: str = "asm"
    #: I/O block sizes: a byte quantity, or ``"auto"`` to use block sizes
    #: inferred by the experimental blktrace watcher from the profiled
    #: application (§6 future work: "We consider using this data in
    #: Synapse emulation when applications require that granularity").
    io_block_size_read: int | str = "1MB"
    io_block_size_write: int | str = "1MB"
    io_filesystem: str = "default"
    io_file_count: int = 1
    mem_block_size: int | str = "1MB"
    net_block_size: int | str = "64KB"

    # --- parallel emulation (E.4) ------------------------------------------
    openmp_threads: int = 1
    mpi_processes: int = 1

    # --- artificial load (§4.3) --------------------------------------------
    cpu_load: float = 0.0
    mem_load: int | str = 0
    disk_load: float = 0.0

    # --- partially supported tunables (Table 1) -----------------------------
    efficiency_target: float | None = None

    # --- bookkeeping --------------------------------------------------------
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 < self.sample_rate <= MAX_SAMPLE_RATE):
            raise ConfigError(
                f"sample_rate must be in (0, {MAX_SAMPLE_RATE}] Hz, got {self.sample_rate}"
            )
        try:
            if self.io_block_size_read != "auto":
                self.io_block_size_read = parse_bytes(self.io_block_size_read)
                if self.io_block_size_read <= 0:
                    raise ConfigError("I/O block sizes must be positive")
            if self.io_block_size_write != "auto":
                self.io_block_size_write = parse_bytes(self.io_block_size_write)
                if self.io_block_size_write <= 0:
                    raise ConfigError("I/O block sizes must be positive")
            self.mem_block_size = parse_bytes(self.mem_block_size)
            self.net_block_size = parse_bytes(self.net_block_size)
            self.mem_load = parse_bytes(self.mem_load)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
        if self.mem_block_size <= 0:
            raise ConfigError("memory block size must be positive")
        if self.openmp_threads < 1:
            raise ConfigError("openmp_threads must be >= 1")
        if self.mpi_processes < 1:
            raise ConfigError("mpi_processes must be >= 1")
        if not (0.0 <= self.cpu_load):
            raise ConfigError("cpu_load must be non-negative")
        if self.disk_load < 0:
            raise ConfigError("disk_load must be non-negative")
        if self.efficiency_target is not None and not (0.0 < self.efficiency_target <= 1.0):
            raise ConfigError("efficiency_target must be in (0, 1]")
        if not self.watchers:
            raise ConfigError("at least one watcher must be enabled")
        if self.sampling_policy not in ("constant", "adaptive"):
            raise ConfigError(
                f"sampling_policy must be 'constant' or 'adaptive', "
                f"got {self.sampling_policy!r}"
            )
        if not (0.0 < self.adaptive_initial_rate <= MAX_SAMPLE_RATE):
            raise ConfigError(
                f"adaptive_initial_rate must be in (0, {MAX_SAMPLE_RATE}]"
            )
        if self.adaptive_settle_seconds < 0:
            raise ConfigError("adaptive_settle_seconds must be non-negative")

    @property
    def sample_interval(self) -> float:
        """Seconds between two profiler samples."""
        return 1.0 / self.sample_rate

    def replace(self, **changes: Any) -> "SynapseConfig":
        """Return a copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dict (stored inside every profile)."""
        data = dataclasses.asdict(self)
        data["watchers"] = list(self.watchers)
        data["atoms"] = list(self.atoms)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SynapseConfig":
        """Inverse of :meth:`to_dict` (unknown keys are ignored)."""
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "watchers" in kwargs:
            kwargs["watchers"] = tuple(kwargs["watchers"])
        if "atoms" in kwargs:
            kwargs["atoms"] = tuple(kwargs["atoms"])
        return cls(**kwargs)
