"""Sampling policies, including the paper's adaptive-rate future work.

§6 ("Sampling Rate"): "A high sampling rate has been shown to be able
to capture application startup more accurately, and is necessary to
profile short-running jobs.  ...  We thus consider an adaptive scheme,
starting with a high sampling rate (10/sec), and after a few seconds,
when we can expect to have captured the application startup, decrease
the rate.  Synapse's codebase does not assume a constant rate."

This module implements that scheme.  A policy maps elapsed run time to
the *next* sampling interval; the profiler queries it each iteration and
builds the (now possibly non-uniform) sample grid from it.  Profiles
carry per-sample ``dt``, so nothing downstream assumes a constant rate —
exactly the property the paper claims of the original codebase.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.core.config import MAX_SAMPLE_RATE, SynapseConfig
from repro.core.errors import ConfigError

__all__ = [
    "SamplingPolicy",
    "ConstantRate",
    "AdaptiveRate",
    "policy_from_config",
]


class SamplingPolicy(ABC):
    """Maps elapsed profiling time to the next sampling interval."""

    @abstractmethod
    def interval_at(self, elapsed: float) -> float:
        """Seconds until the next sample, given ``elapsed`` run time."""

    def grid(self, runtime: float) -> list[tuple[float, float]]:
        """The ``(t, dt)`` sample grid covering ``runtime`` seconds.

        The final interval is always completed in full (the profiler
        "only terminates when full sample periods have passed", §4.5).
        """
        if runtime <= 0:
            return [(0.0, self.interval_at(0.0))]
        grid: list[tuple[float, float]] = []
        t = 0.0
        while t < runtime:
            dt = self.interval_at(t)
            grid.append((t, dt))
            t += dt
        return grid

    def describe(self) -> dict[str, Any]:
        """Serialisable description stored in profile metadata."""
        return {"policy": type(self).__name__}


@dataclass(frozen=True)
class ConstantRate(SamplingPolicy):
    """The default fixed-rate policy of §4.1."""

    rate: float

    def __post_init__(self) -> None:
        if not (0.0 < self.rate <= MAX_SAMPLE_RATE):
            raise ConfigError(
                f"sampling rate must be in (0, {MAX_SAMPLE_RATE}], got {self.rate}"
            )

    def interval_at(self, elapsed: float) -> float:
        return 1.0 / self.rate

    def describe(self) -> dict[str, Any]:
        return {"policy": "constant", "rate": self.rate}


@dataclass(frozen=True)
class AdaptiveRate(SamplingPolicy):
    """High-rate startup capture, then settle to a base rate (§6).

    Attributes
    ----------
    initial_rate:
        Rate during the startup window (paper suggests the 10 Hz cap).
    settle_seconds:
        Length of the startup window ("after a few seconds ... decrease
        the rate").
    base_rate:
        Steady-state rate after the window.
    """

    initial_rate: float = MAX_SAMPLE_RATE
    settle_seconds: float = 5.0
    base_rate: float = 1.0

    def __post_init__(self) -> None:
        for name, rate in (("initial_rate", self.initial_rate), ("base_rate", self.base_rate)):
            if not (0.0 < rate <= MAX_SAMPLE_RATE):
                raise ConfigError(
                    f"{name} must be in (0, {MAX_SAMPLE_RATE}], got {rate}"
                )
        if self.initial_rate < self.base_rate:
            raise ConfigError("initial_rate must be >= base_rate")
        if self.settle_seconds < 0:
            raise ConfigError("settle_seconds must be non-negative")

    def interval_at(self, elapsed: float) -> float:
        # The epsilon absorbs float accumulation when grid timestamps are
        # built by summing many small intervals up to the settle boundary.
        if elapsed < self.settle_seconds - 1e-9:
            return 1.0 / self.initial_rate
        return 1.0 / self.base_rate

    def describe(self) -> dict[str, Any]:
        return {
            "policy": "adaptive",
            "initial_rate": self.initial_rate,
            "settle_seconds": self.settle_seconds,
            "base_rate": self.base_rate,
        }


def policy_from_config(config: SynapseConfig) -> SamplingPolicy:
    """Resolve the sampling policy selected by a configuration.

    ``config.sampling_policy`` chooses ``"constant"`` (default; uses
    ``sample_rate``) or ``"adaptive"`` (uses ``adaptive_initial_rate`` /
    ``adaptive_settle_seconds`` for the startup window and
    ``sample_rate`` as the steady-state rate).
    """
    name = getattr(config, "sampling_policy", "constant")
    if name == "constant":
        return ConstantRate(rate=config.sample_rate)
    if name == "adaptive":
        return AdaptiveRate(
            initial_rate=config.adaptive_initial_rate,
            settle_seconds=config.adaptive_settle_seconds,
            base_rate=config.sample_rate,
        )
    raise ConfigError(f"unknown sampling policy {name!r}")
