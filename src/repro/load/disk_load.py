"""Background disk load: a continuous writer thread."""

from __future__ import annotations

import os
import tempfile
import threading

from repro.load.base import LoadGenerator

__all__ = ["DiskLoad"]


class DiskLoad(LoadGenerator):
    """Writes ``rate_bytes_per_s`` to a scratch file while running."""

    def __init__(self, rate_bytes_per_s: float = 1 << 20, directory: str | None = None) -> None:
        super().__init__()
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_bytes_per_s
        self.directory = directory
        self.bytes_written = 0

    def _write(self) -> None:
        chunk = b"\x00" * 65536
        interval = len(chunk) / self.rate
        with tempfile.NamedTemporaryFile(
            prefix="synapse-load-", dir=self.directory, delete=True
        ) as handle:
            while not self._stop.is_set():
                handle.write(chunk)
                handle.flush()
                self.bytes_written += len(chunk)
                # Bound the scratch file: rewind after 64 MB.
                if handle.tell() > (64 << 20):
                    handle.seek(0)
                    os.ftruncate(handle.fileno(), 0)
                self._stop.wait(interval)

    def _workers(self) -> list[threading.Thread]:
        return [threading.Thread(target=self._write, name="disk-load")]
