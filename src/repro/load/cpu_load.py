"""Background CPU load: spinning workers with a duty cycle."""

from __future__ import annotations

import threading
import time

from repro.load.base import LoadGenerator

__all__ = ["CPULoad"]


class CPULoad(LoadGenerator):
    """Keeps ``workers`` threads busy at ``duty`` fractional utilisation.

    ``duty=1.0`` spins continuously; lower values alternate spin/sleep in
    10 ms slices — the conventional `stress`-style pattern.
    """

    def __init__(self, workers: int = 1, duty: float = 1.0) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not (0.0 < duty <= 1.0):
            raise ValueError("duty must be in (0, 1]")
        self.workers = workers
        self.duty = duty

    def _spin(self) -> None:
        slice_s = 0.01
        busy = slice_s * self.duty
        idle = slice_s - busy
        x = 1.0001
        while not self._stop.is_set():
            deadline = time.perf_counter() + busy
            while time.perf_counter() < deadline:
                x = x * 1.0000001 + 1e-9
            if idle > 0:
                self._stop.wait(idle)
        self._sink = x

    def _workers(self) -> list[threading.Thread]:
        return [
            threading.Thread(target=self._spin, name=f"cpu-load-{i}")
            for i in range(self.workers)
        ]
