"""Background memory load: hold a resident allocation."""

from __future__ import annotations

import threading

from repro.load.base import LoadGenerator

__all__ = ["MemoryLoad"]


class MemoryLoad(LoadGenerator):
    """Allocates and holds ``nbytes`` of touched memory while running."""

    def __init__(self, nbytes: int) -> None:
        super().__init__()
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.nbytes = nbytes
        self._buffer: bytearray | None = None

    def _hold(self) -> None:
        buf = bytearray(self.nbytes)
        buf[::4096] = b"\x01" * len(buf[::4096])
        self._buffer = buf
        self._stop.wait()
        self._buffer = None

    def _workers(self) -> list[threading.Thread]:
        return [threading.Thread(target=self._hold, name="mem-load")]

    @property
    def held_bytes(self) -> int:
        """Bytes currently held resident (0 when stopped)."""
        return len(self._buffer) if self._buffer is not None else 0
