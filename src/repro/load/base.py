"""Artificial load generators (§4.3: "similar to the Linux utility
'stress'").

Synapse "is able to force an artificial CPU, disk and memory load onto
the system while emulating an application, thus emulating the application
execution in a stressed environment".  Loads are context managers: they
start background activity on entry and stop it cleanly on exit.  On the
simulation plane, artificial load is expressed as extra streams in the
emulation workload instead (see :meth:`EmulationPlan.build_sim_workload`).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

__all__ = ["LoadGenerator"]


class LoadGenerator(ABC):
    """Background host-plane load with start/stop lifecycle."""

    def __init__(self) -> None:
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    @abstractmethod
    def _workers(self) -> list[threading.Thread]:
        """Create (not start) the worker threads of this load."""

    def start(self) -> None:
        """Begin generating load (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        self._threads = self._workers()
        for thread in self._threads:
            thread.daemon = True
            thread.start()

    def stop(self) -> None:
        """Stop all load workers and wait for them."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []

    @property
    def running(self) -> bool:
        """Whether any worker is active."""
        return any(thread.is_alive() for thread in self._threads)

    def __enter__(self) -> "LoadGenerator":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
