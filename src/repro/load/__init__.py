"""Artificial background loads for stressed-environment emulation (§4.3)."""

from repro.load.base import LoadGenerator
from repro.load.cpu_load import CPULoad
from repro.load.disk_load import DiskLoad
from repro.load.mem_load import MemoryLoad

__all__ = ["CPULoad", "DiskLoad", "LoadGenerator", "MemoryLoad"]
