"""Compute kernels for the emulation compute atom (§4.2)."""

from repro.kernels.asm import AsmKernel
from repro.kernels.base import Calibration, ComputeKernel
from repro.kernels.c import CKernel
from repro.kernels.openmp import OpenMPKernel
from repro.kernels.python_kernel import PythonKernel
from repro.kernels.registry import get_kernel, list_kernels, register
from repro.kernels.sleep import SleepKernel

__all__ = [
    "AsmKernel",
    "CKernel",
    "Calibration",
    "ComputeKernel",
    "OpenMPKernel",
    "PythonKernel",
    "SleepKernel",
    "get_kernel",
    "list_kernels",
    "register",
]
