"""Compute-kernel protocol and calibration (§4.2 of the paper).

A compute kernel is "a fine-grained and tunable software element that
consumes one type of system resource" — here, CPU cycles.  Kernels are
*calibrated*: a short timed run measures the wall cost of one work unit,
from which the cycles-per-unit conversion follows via the nominal clock.
``execute_cycles`` then loops the unit until the requested cycle budget
is consumed.

Kernels differ in *how* they consume cycles (cache-resident vs
cache-missing matrix multiplication, pure Python, sleeping) — the paper's
whole point in E.3: the amount can be matched by any kernel, the fidelity
of the execution behaviour cannot.

On the simulation plane kernels are not executed; their ``workload_class``
maps them onto the machine model's per-class IPC/bias table instead.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.errors import CalibrationError

__all__ = ["ComputeKernel", "Calibration"]


@dataclass(frozen=True)
class Calibration:
    """Measured cost of one kernel work unit."""

    seconds_per_unit: float
    cycles_per_unit: float
    units_measured: int
    frequency: float

    def units_for_cycles(self, cycles: float) -> int:
        """Work units needed to consume ``cycles`` (at least 1 if > 0)."""
        if cycles <= 0:
            return 0
        return max(1, round(cycles / self.cycles_per_unit))


class ComputeKernel(ABC):
    """Base class of host-plane compute kernels."""

    #: Registry name (``"asm"``, ``"c"``, ``"python"``, ``"sleep"``).
    name: str = "kernel"
    #: Simulation-plane workload class this kernel maps to.
    workload_class: str = "app.generic"
    #: Human description for the CLI.
    description: str = ""

    _calibration: Calibration | None = None

    @abstractmethod
    def execute_units(self, units: int) -> None:
        """Synchronously execute ``units`` work units on the host CPU."""

    def calibrate(self, frequency: float, target_seconds: float = 0.02) -> Calibration:
        """Measure seconds/cycles per work unit (cached per instance).

        Runs an increasing number of units until the measurement window
        exceeds ``target_seconds``, then divides.  A kernel whose unit is
        unmeasurably fast raises :class:`CalibrationError`.
        """
        if self._calibration is not None:
            return self._calibration
        if frequency <= 0:
            raise CalibrationError("calibration needs a positive clock frequency")
        units = 1
        self.execute_units(1)  # warm caches / allocate buffers
        for _ in range(24):
            start = time.perf_counter()
            self.execute_units(units)
            elapsed = time.perf_counter() - start
            if elapsed >= target_seconds:
                per_unit = elapsed / units
                self._calibration = Calibration(
                    seconds_per_unit=per_unit,
                    cycles_per_unit=per_unit * frequency,
                    units_measured=units,
                    frequency=frequency,
                )
                return self._calibration
            units *= 2
        raise CalibrationError(
            f"kernel {self.name!r} unit is too fast to calibrate"
        )

    def execute_cycles(self, cycles: float, frequency: float) -> int:
        """Consume approximately ``cycles`` CPU cycles; returns units run."""
        if cycles <= 0:
            return 0
        calibration = self.calibrate(frequency)
        units = calibration.units_for_cycles(cycles)
        self.execute_units(units)
        return units
