"""OpenMP-style threaded wrapper around any compute kernel.

"The default Synapse emulation kernel for the compute atom supports
OpenMP, but the number of OpenMP threads to be used needs to be
configured manually" (§4.5).  The host-plane analogue splits the unit
budget across Python threads; the BLAS matmul kernels release the GIL,
so threads genuinely execute in parallel on multiple cores.
"""

from __future__ import annotations

import threading

from repro.kernels.base import Calibration, ComputeKernel

__all__ = ["OpenMPKernel"]


class OpenMPKernel(ComputeKernel):
    """Runs an inner kernel's units across ``threads`` worker threads."""

    name = "openmp"
    description = "thread-parallel wrapper around another kernel"

    def __init__(self, inner: ComputeKernel, threads: int = 2) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.inner = inner
        self.threads = threads
        self.name = f"openmp:{inner.name}"
        self.workload_class = inner.workload_class

    def execute_units(self, units: int) -> None:
        if units <= 0:
            return
        if self.threads == 1:
            self.inner.execute_units(units)
            return
        share, remainder = divmod(units, self.threads)
        budgets = [share + (1 if i < remainder else 0) for i in range(self.threads)]
        workers = [
            threading.Thread(target=self.inner.execute_units, args=(budget,))
            for budget in budgets
            if budget > 0
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    def calibrate(self, frequency: float, target_seconds: float = 0.02) -> Calibration:
        # Cycles consumed are the *inner* kernel's: parallelism shortens
        # wall time but the per-unit cycle cost is unchanged.
        return self.inner.calibrate(frequency, target_seconds)
