"""The "ASM" kernel: cache-resident small-matrix multiplication.

The paper's default compute atom kernel is "a loop of assembly code that
performs a matrix multiplication with small matrices (they fit into the
CPU cache) very efficiently; the loop's efficiency represents the maximum
efficiency at which this atom can emulate" (§4.2).  The host-plane
analogue multiplies 48x48 float64 matrices (~18 KB each — comfortably L1/
L2 resident) through the BLAS dgemm NumPy binds, giving the same
high-IPC, cache-friendly profile.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ComputeKernel

__all__ = ["AsmKernel"]

_N = 48


class AsmKernel(ComputeKernel):
    """Cache-resident matmul loop (high efficiency, maximal IPC)."""

    name = "asm"
    workload_class = "kernel.asm"
    description = "small cache-resident matrix multiplication (default kernel)"

    def __init__(self) -> None:
        rng = np.random.default_rng(42)
        self._a = rng.random((_N, _N))
        self._b = rng.random((_N, _N))
        self._out = np.empty((_N, _N))

    def execute_units(self, units: int) -> None:
        a, b, out = self._a, self._b, self._out
        for _ in range(units):
            np.matmul(a, b, out=out)
