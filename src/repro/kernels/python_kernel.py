"""A pure-Python compute kernel.

"Users can provide additional compute kernels, coded in Python, C or
Assembly" (§4.2).  The pure-Python kernel is the low-IPC extreme: heavy
interpreter overhead, very low useful-operation density — handy when the
emulated application is itself interpreter-bound (scripted analysis
stages, workflow glue code).
"""

from __future__ import annotations

from repro.kernels.base import ComputeKernel

__all__ = ["PythonKernel"]

_ITERATIONS_PER_UNIT = 10_000


class PythonKernel(ComputeKernel):
    """Interpreter-bound arithmetic loop."""

    name = "python"
    workload_class = "kernel.python"
    description = "pure-Python arithmetic loop (interpreter-bound)"

    def execute_units(self, units: int) -> None:
        x = 1.0001
        for _ in range(units):
            acc = 0.0
            for i in range(_ITERATIONS_PER_UNIT):
                acc += x * i - acc * 0.5
        # Keep the result alive so the loop cannot be optimised away.
        self._sink = acc  # noqa: B010 (intentional attribute write)
