"""The sleep kernel: wall time without cycles.

§4.5 ("Application Semantics") describes applications dominated by
``sleep(3)``: large Tx, negligible cycles.  Synapse's profiler cannot
see the difference, but "a user could provide an emulation kernel which
performs sleep(n) or some equivalent operation" — this is that kernel.
Selecting it makes the compute atom spend the *time* equivalent of the
requested cycles instead of burning them.
"""

from __future__ import annotations

import time

from repro.kernels.base import Calibration, ComputeKernel

__all__ = ["SleepKernel"]

#: Wall seconds one sleep work unit covers.
_UNIT_SECONDS = 1e-3


class SleepKernel(ComputeKernel):
    """Consumes wall-clock time instead of CPU cycles."""

    name = "sleep"
    workload_class = "kernel.sleep"
    description = "sleeps for the wall-time equivalent of the cycle budget"

    def execute_units(self, units: int) -> None:
        if units > 0:
            time.sleep(units * _UNIT_SECONDS)

    def calibrate(self, frequency: float, target_seconds: float = 0.02) -> Calibration:
        # Sleeping needs no measurement: a unit is _UNIT_SECONDS by design.
        if self._calibration is None:
            self._calibration = Calibration(
                seconds_per_unit=_UNIT_SECONDS,
                cycles_per_unit=_UNIT_SECONDS * frequency,
                units_measured=0,
                frequency=frequency,
            )
        return self._calibration
