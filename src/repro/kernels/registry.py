"""Compute-kernel registry.

The paper lets users "write their own kernels to control more tightly how
system resources are consumed" (§1); custom kernels register here and are
then selectable through ``SynapseConfig.compute_kernel``.
"""

from __future__ import annotations

from repro.core.errors import ConfigError
from repro.kernels.asm import AsmKernel
from repro.kernels.base import ComputeKernel
from repro.kernels.c import CKernel
from repro.kernels.python_kernel import PythonKernel
from repro.kernels.sleep import SleepKernel

__all__ = ["register", "get_kernel", "list_kernels"]

_REGISTRY: dict[str, type[ComputeKernel]] = {}
_INSTANCES: dict[str, ComputeKernel] = {}


def register(cls: type[ComputeKernel]) -> type[ComputeKernel]:
    """Register a kernel class under its ``name`` (usable as decorator)."""
    if not issubclass(cls, ComputeKernel):
        raise ConfigError(f"{cls!r} is not a ComputeKernel subclass")
    if not cls.name or cls.name == "kernel":
        raise ConfigError("kernel classes must define a unique 'name'")
    _REGISTRY[cls.name] = cls
    _INSTANCES.pop(cls.name, None)
    return cls


def get_kernel(name: str) -> ComputeKernel:
    """Shared instance of a registered kernel (calibration is cached)."""
    if name not in _REGISTRY:
        raise ConfigError(f"unknown kernel {name!r}; registered: {sorted(_REGISTRY)}")
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def list_kernels() -> list[str]:
    """Names of all registered kernels."""
    return sorted(_REGISTRY)


for _cls in (AsmKernel, CKernel, PythonKernel, SleepKernel):
    register(_cls)
