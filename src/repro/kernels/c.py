"""The "C" kernel: cache-missing large-matrix multiplication.

"Other kernels for compute atoms are implemented in C, and perform matrix
multiplications on data which do not usually fit into the CPU caches.
Those kernels have a lower efficiency, but they represent actual
application codes more realistically" (§4.2).  E.3 shows this kernel
emulating Gromacs with markedly better fidelity than the ASM kernel.

The host-plane analogue multiplies 512x512 float64 matrices (2 MB per
operand — larger than L2, streaming through L3/memory), reproducing the
lower-IPC, memory-bound execution profile.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ComputeKernel

__all__ = ["CKernel"]

_N = 512


class CKernel(ComputeKernel):
    """Cache-missing matmul loop (application-like memory behaviour)."""

    name = "c"
    workload_class = "kernel.c"
    description = "large cache-missing matrix multiplication"

    def __init__(self) -> None:
        rng = np.random.default_rng(43)
        self._a = rng.random((_N, _N))
        self._b = rng.random((_N, _N))
        self._out = np.empty((_N, _N))

    def execute_units(self, units: int) -> None:
        a, b, out = self._a, self._b, self._out
        for _ in range(units):
            np.matmul(a, b, out=out)
