"""Campaign-level analysis: a finished ledger → the paper's tables.

The Synapse paper's results are *aggregates*: consistency tables (mean,
standard deviation and coefficient of variation of durations over
repeated runs, §5 E.1), error tables (relative error of every counter
against a reference, E.2/E.3) and sampling-overhead columns (E.1's
"profiling vs execution").  This module rebuilds those tables from a
campaign's store ledger: each ``(app, machine)`` group aggregates its
cells (seeds × repeats), and counter means are compared against the
same app's group on a *reference machine* (default: the first machine
in the spec) — the cross-resource analogue of the paper's
emulation-vs-application comparisons.

The ledger is read through the store's batched APIs: cell digests
resolve on the index plane (tag scans, no payloads) and
``store.get_many`` then loads exactly the artifact documents the report
aggregates — a report build touches each payload once, never the whole
store.

Entry points: :func:`analyze_campaign` (library),
``core.api.campaign_report`` (public API) and
``repro campaign <spec> --report [--format table|json|csv]`` (CLI).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.errors import SynapseError
from repro.core.samples import Profile
from repro.core.statistics import MetricStats, aggregate, error_percent
from repro.runtime.campaign import CampaignSpec, ledger
from repro.util.tables import Table

__all__ = [
    "CampaignAnalysis",
    "GroupStats",
    "MetricLine",
    "analyze_campaign",
]

#: Metric prefixes treated as counters in the error columns.  Statics
#: describing the machine (``sys.*``) and the duration totals
#: (``time.*``, reported separately as Tx) are excluded.
COUNTER_PREFIXES = ("cpu.", "io.", "mem.", "net.")


@dataclass(frozen=True)
class MetricLine:
    """One metric's consistency/error row within a cell group."""

    name: str
    n: int
    mean: float
    std: float
    #: Coefficient of variation in percent (the paper's consistency
    #: number: std as a fraction of the mean).
    cv_pct: float
    #: Mean of the same metric in the reference group (None when the
    #: reference group is empty or lacks the metric).
    ref_mean: float | None = None
    #: Relative error in percent against ``ref_mean``.
    err_pct: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "cv_pct": self.cv_pct,
            "ref_mean": self.ref_mean,
            "err_pct": _json_number(self.err_pct),
        }


def _json_number(value: float | None) -> float | str | None:
    """A JSON-representable form of a possibly non-finite float.

    ``err_pct`` is infinite when the reference mean is zero but the
    measured mean is not; ``json.dumps`` would emit the non-standard
    ``Infinity`` token for it, breaking every strict consumer of
    ``--format json``.  Non-finite values travel as their string form
    (``"inf"``, ``"nan"``) instead — distinct from ``null``, which
    means "no reference to compare against".
    """
    if value is None or math.isfinite(value):
        return value
    return repr(value)


def _line(stat: MetricStats, ref_mean: float | None = None) -> MetricLine:
    """A consistency/error line from one aggregated metric.

    The aggregation itself is :func:`repro.core.statistics.aggregate` —
    the exact machinery behind ``repro stats`` — so the campaign report
    can never disagree with the per-command statistics on the same
    profiles.  That also folds the §4.3 derived metrics (``cpu.ipc``,
    ``cpu.flop_rate``, ...) into the per-metric lines.
    """
    return MetricLine(
        name=stat.name,
        n=stat.n,
        mean=stat.mean,
        std=stat.std,
        cv_pct=100.0 * stat.std / abs(stat.mean) if stat.mean else 0.0,
        ref_mean=ref_mean,
        err_pct=None if ref_mean is None else error_percent(ref_mean, stat.mean),
    )


@dataclass
class GroupStats:
    """Aggregated statistics of one ``app × machine`` cell group."""

    app: str
    machine: str
    expected: int
    present: int
    #: Per-metric consistency lines; ``"tx"`` plus every counter/total.
    metrics: dict[str, MetricLine] = field(default_factory=dict)
    #: Mean samples recorded per cell and the configured sampling rate
    #: (the sampling-overhead inputs of E.1).
    samples_mean: float = 0.0
    sample_rate: float = 0.0
    #: Profiling overhead in percent: measured Tx against the
    #: application's own accounted runtime (E.1's "profiling vs
    #: execution"; ~0 on the simulation plane by construction).
    overhead_pct: float = 0.0

    @property
    def tx(self) -> MetricLine | None:
        return self.metrics.get("tx")

    def counter_errors(self) -> dict[str, float]:
        """Relative errors (pct) of the counter metrics vs reference."""
        return {
            name: line.err_pct
            for name, line in self.metrics.items()
            if line.err_pct is not None and name.startswith(COUNTER_PREFIXES)
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "machine": self.machine,
            "expected": self.expected,
            "present": self.present,
            "samples_mean": self.samples_mean,
            "sample_rate": self.sample_rate,
            "overhead_pct": self.overhead_pct,
            "metrics": {
                name: line.to_dict() for name, line in sorted(self.metrics.items())
            },
        }


@dataclass
class CampaignAnalysis:
    """The paper-style consistency/error report over a campaign ledger."""

    name: str
    kind: str
    reference: str
    groups: list[GroupStats] = field(default_factory=list)
    expected_cells: int = 0
    present_cells: int = 0

    @property
    def complete(self) -> bool:
        return self.present_cells == self.expected_cells

    def group(self, app: str, machine: str) -> GroupStats:
        """One group by coordinates (raises for unknown pairs)."""
        for group in self.groups:
            if group.app == app and group.machine == machine:
                return group
        raise SynapseError(f"no campaign group for app={app!r} machine={machine!r}")

    # -- renderings ---------------------------------------------------------

    def table(self) -> Table:
        """Compact per-group summary (one row per app × machine)."""
        table = Table(
            ["app", "machine", "cells", "Tx mean [s]", "Tx std", "Tx CV %",
             "err mean %", "err max %", "worst counter", "samples", "overhead %"],
            title=(
                f"campaign {self.name!r}: consistency/error vs reference "
                f"{self.reference!r} ({self.present_cells}/{self.expected_cells} "
                f"cells)"
            ),
        )
        for group in self.groups:
            cells = f"{group.present}/{group.expected}"
            if group.present == 0:
                table.add_row([group.app, group.machine, cells]
                              + ["-"] * 8)
                continue
            tx = group.tx
            errors = group.counter_errors()
            if errors:
                # max() keeps infinities: a counter that is zero on the
                # reference but nonzero here is the *most* divergent
                # metric and must headline the row, not vanish from it.
                worst = max(errors, key=lambda name: errors[name])
                err_max = errors[worst]
                finite = [v for v in errors.values() if v != float("inf")]
                err_mean = (
                    sum(finite) / len(finite) if finite else float("inf")
                )
            else:
                worst, err_mean, err_max = "-", "-", "-"
            table.add_row([
                group.app, group.machine, cells,
                tx.mean, tx.std, tx.cv_pct,
                err_mean, err_max, worst,
                group.samples_mean, group.overhead_pct,
            ])
        return table

    def to_dict(self) -> dict[str, Any]:
        return {
            "campaign": self.name,
            "kind": self.kind,
            "reference": self.reference,
            "expected_cells": self.expected_cells,
            "present_cells": self.present_cells,
            "complete": self.complete,
            "groups": [group.to_dict() for group in self.groups],
        }

    def to_json(self) -> str:
        # allow_nan=False guarantees strict JSON: any non-finite number
        # that escapes the to_dict() sanitisation fails loudly here
        # instead of emitting an unparseable 'Infinity' token.
        return (
            json.dumps(self.to_dict(), indent=1, sort_keys=True, allow_nan=False)
            + "\n"
        )

    def to_csv(self) -> str:
        """Long-form CSV: one row per ``(app, machine, metric)``."""
        from repro.export.csvout import rows_to_csv  # noqa: PLC0415 (cycle)

        headers = ["app", "machine", "metric", "n", "mean", "std", "cv_pct",
                   "ref_mean", "err_pct"]
        rows = []
        for group in self.groups:
            for name in sorted(group.metrics):
                line = group.metrics[name]
                rows.append([
                    group.app, group.machine, name, line.n,
                    repr(line.mean), repr(line.std), repr(line.cv_pct),
                    "" if line.ref_mean is None else repr(line.ref_mean),
                    "" if line.err_pct is None else repr(line.err_pct),
                ])
        return rows_to_csv(headers, rows)

    def render(self, fmt: str = "table") -> str:
        """The report in one of the CLI formats: table, json or csv."""
        if fmt == "table":
            return self.table().render()
        if fmt == "json":
            return self.to_json()
        if fmt == "csv":
            return self.to_csv()
        raise SynapseError(f"unknown report format {fmt!r} (table, json, csv)")


def _overhead_pct(profiles: list[Profile]) -> float:
    """Mean Tx vs mean application-accounted runtime, in percent."""
    # totals() is an uncached full-sample scan; bind it once per profile.
    totals = [p.totals() for p in profiles]
    tx = sum(p.tx for p in profiles) / len(profiles)
    accounted = [
        t.get("time.runtime_rusage") or t.get("time.runtime") for t in totals
    ]
    accounted = [a for a in accounted if a]
    if not accounted:
        return 0.0
    base = sum(accounted) / len(accounted)
    return 100.0 * (tx - base) / base if base else 0.0


def analyze_campaign(
    spec: CampaignSpec | Mapping[str, Any],
    store: Any,
    reference: str | None = None,
) -> CampaignAnalysis:
    """Aggregate a campaign's ledger into its consistency/error report.

    ``reference`` picks the machine whose per-app counter means anchor
    the error columns (default: the spec's first machine).  A partial
    ledger analyses the cells it has — groups with no cells render
    empty — but an *empty* ledger raises: there is nothing to report,
    and the likeliest cause is analysing before (or instead of) running
    the campaign.
    """
    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    if reference is None:
        reference = spec.machines[0]
    if reference not in spec.machines:
        raise SynapseError(
            f"reference machine {reference!r} is not part of the campaign "
            f"(machines: {list(spec.machines)})"
        )
    entries = ledger(store, spec.name)

    by_group: dict[tuple[str, str], list[Profile]] = {}
    expected: dict[tuple[str, str], int] = {}
    for cell in spec.cells():
        key = (cell.app, cell.machine)
        expected[key] = expected.get(key, 0) + 1
        profile = entries.get(cell.digest)
        if profile is not None:
            by_group.setdefault(key, []).append(profile)

    present_cells = sum(len(profiles) for profiles in by_group.values())
    if present_cells == 0:
        raise SynapseError(
            f"campaign {spec.name!r} has no completed cells in the ledger; "
            "run the campaign first (repro campaign <spec.json>)"
        )

    # One aggregation pass per populated group (the full-sample scans
    # dominate report builds); the reference anchors read out of the
    # same results instead of re-aggregating the reference groups.
    group_stats = {
        key: aggregate(profiles) for key, profiles in by_group.items()
    }
    ref_means: dict[str, dict[str, float]] = {
        app: {
            name: stat.mean
            for name, stat in group_stats[(app, reference)].metrics.items()
        }
        for app in spec.apps
        if (app, reference) in group_stats
    }

    groups: list[GroupStats] = []
    for app in spec.apps:
        for machine in spec.machines:
            key = (app, machine)
            profiles = by_group.get(key, [])
            group = GroupStats(
                app=app,
                machine=machine,
                expected=expected[key],
                present=len(profiles),
            )
            if profiles:
                anchors = ref_means.get(app, {})
                group.metrics = {
                    name: _line(stat, anchors.get(name))
                    for name, stat in group_stats[key].metrics.items()
                }
                group.samples_mean = (
                    sum(p.n_samples for p in profiles) / len(profiles)
                )
                group.sample_rate = profiles[0].sample_rate
                group.overhead_pct = _overhead_pct(profiles)
            groups.append(group)

    return CampaignAnalysis(
        name=spec.name,
        kind=spec.kind,
        reference=reference,
        groups=groups,
        expected_cells=spec.n_cells,
        present_cells=present_cells,
    )
