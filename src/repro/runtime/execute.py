"""Request executors: how each :class:`~repro.runtime.service.RunRequest`
kind actually runs.

These functions are the worker-side half of the run service.  They are
deliberately *declarative-in, deterministic-out*: a request plus its
(unpacked) target and machine fully determine the result, including the
noise stream — ``seed_from(machine, workload, seed, index)`` is exactly
the per-spawn-slot derivation :meth:`repro.sim.backend.SimBackend.spawn`
uses, so service execution is bit-identical to the sequential paths it
replaced, regardless of worker count or chunking.

All imports of the execution planes happen lazily inside the executors:
the planes themselves (profiler, emulator, sim backend) import the run
service, and this module must stay importable from either side.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.core.errors import ConfigError, WorkloadError
from repro.faults import inject
from repro.runtime.service import RunRequest

__all__ = ["dispatch"]


def dispatch(request: RunRequest, target: Any, machine: Any) -> Any:
    """Execute one request; ``target``/``machine`` are passed separately
    because pooled requests ship them via the batch's shared payload."""
    # Chaos plane: fires in whichever process executes the request — a
    # pool worker for pooled requests (so ``crash`` rules emulate real
    # worker death), the parent otherwise.
    inject("worker.execute", key=request.key)
    if request.kind == "call":
        return request.runner()  # type: ignore[misc]
    if request.kind == "engine":
        return _execute_engine(request, target, machine)
    if request.kind == "profile":
        return _execute_profile(request, target, machine)
    if request.kind == "emulate":
        return _execute_emulate(request, target, machine)
    raise WorkloadError(f"cannot execute run kind {request.kind!r}")


def _reduced(request: RunRequest, outcome: Any) -> Any:
    return request.reduce(outcome) if request.reduce is not None else outcome


def _as_config(config: Any):
    from repro.core.config import SynapseConfig  # noqa: PLC0415 (cycle)

    if config is None:
        return SynapseConfig()
    if isinstance(config, SynapseConfig):
        return config
    if isinstance(config, Mapping):
        return SynapseConfig(**dict(config))
    raise ConfigError(
        f"request config must be a SynapseConfig or mapping, not "
        f"{type(config).__name__}"
    )


def _sim_backend(request: RunRequest, machine: Any):
    """Fresh sim backend reproducing the request's spawn-slot identity."""
    from repro.sim.backend import SimBackend  # noqa: PLC0415 (cycle)

    return SimBackend(
        machine,
        noisy=request.noisy,
        seed=request.seed,
        spawn_offset=request.index - 1,
    )


def _noise_model(request: RunRequest, spec: Any, workload: Any):
    from repro.sim.noise import NoiseModel, seed_from  # noqa: PLC0415 (cycle)

    if not request.noisy:
        return NoiseModel.silent()
    seed = request.noise_seed
    if seed is None:
        seed = seed_from(spec.name, workload.name, request.seed, request.index)
    return NoiseModel(
        seed=seed,
        duration_sigma=spec.noise_sigma,
        counter_sigma=spec.noise_sigma / 3.0,
    )


def _resolve_workload(target: Any, spec: Any):
    from repro.sim.packed import PackedWorkload  # noqa: PLC0415 (cycle)
    from repro.sim.workload import SimWorkload  # noqa: PLC0415 (cycle)

    if isinstance(target, (SimWorkload, PackedWorkload)):
        return target
    # Prefer the columnar builder — same demands, no per-demand objects.
    builder = getattr(target, "build_packed", None)
    if callable(builder):
        return builder(spec)
    builder = getattr(target, "build_workload", None)
    if callable(builder):
        return builder(spec)
    raise WorkloadError(
        f"cannot execute {target!r} as an engine request: expected a "
        "SimWorkload, a PackedWorkload, or an object with "
        "build_workload(machine)"
    )


def _execute_engine(request: RunRequest, target: Any, machine: Any) -> Any:
    """Raw engine execution; yields an ``ExecutionRecord`` (or its
    ``reduce``-tion), noise-seeded exactly like ``SimBackend.spawn``."""
    from repro.sim.engine import Engine  # noqa: PLC0415 (cycle)
    from repro.sim.machines import resolve_machine  # noqa: PLC0415 (cycle)

    if machine is None:
        raise WorkloadError("engine requests need a machine model")
    spec = resolve_machine(machine)
    workload = _resolve_workload(target, spec)
    record = Engine(spec, _noise_model(request, spec, workload)).run(workload)
    return _reduced(request, record)


def _execute_profile(request: RunRequest, target: Any, machine: Any) -> Any:
    """A full profiling run; yields a ``Profile`` (or its reduction)."""
    from repro.core.profiler import Profiler  # noqa: PLC0415 (cycle)

    backend = request.backend
    if backend is None:
        if machine is not None:
            backend = _sim_backend(request, machine)
        else:
            from repro.core.api import default_backend_for  # noqa: PLC0415 (cycle)

            backend = default_backend_for(target)
    profiler = Profiler(backend, config=_as_config(request.config))
    profile = profiler.run(target, tags=request.tags, command=request.command)
    return _reduced(request, profile)


def _execute_emulate(request: RunRequest, target: Any, machine: Any) -> Any:
    """Replay a profile or plan; yields an ``EmulationResult``."""
    from repro.core.emulator import Emulator  # noqa: PLC0415 (cycle)
    from repro.core.plan import EmulationPlan  # noqa: PLC0415 (cycle)
    from repro.core.samples import Profile  # noqa: PLC0415 (cycle)

    config = _as_config(request.config)
    backend = request.backend
    if backend is None and machine is not None:
        backend = _sim_backend(request, machine)
    if isinstance(target, EmulationPlan):
        plan = target
    elif isinstance(target, Profile):
        plan = EmulationPlan.from_profile(target, config)
    else:
        raise WorkloadError(
            f"cannot emulate {type(target).__name__} through the run "
            "service: expected a Profile or EmulationPlan (resolve "
            "stored commands before building the request)"
        )
    emulator = Emulator(backend=backend, config=config)
    return _reduced(request, emulator.replay(plan))
