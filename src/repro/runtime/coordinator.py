"""Elastic campaign coordination: heartbeats, leases, work stealing.

Static ``--shard i/n`` partitions (see :mod:`repro.runtime.campaign`)
divide a sweep *a priori*: a dead or slow shard strands its whole
partition until a human re-invokes it.  This module replaces the static
partition with a **lease-based pull loop** over the same shared store
ledger, so any number of workers — joining late, crashing, hanging or
draining out — converge the campaign cooperatively:

* **Membership.** Each worker registers a *heartbeat document* (command
  :data:`MEMBER_COMMAND`) and renews it from a background thread every
  third of the lease TTL.  A worker whose newest heartbeat is older
  than the TTL is dead: its leases become stealable immediately, and a
  draining worker deregisters outright so survivors do not even wait
  out the TTL.
* **Leases.** Pending cells are pulled in batches; each pulled cell is
  leased (command :data:`LEASE_COMMAND`) with the owner, an **epoch**
  counter and a creation stamp.  The heartbeat thread renews held
  leases while the wave executes — but stops renewing once the wave has
  provably overrun its :func:`~repro.runtime.service.batch_budget`
  deadline, so even a worker hung past every enforcement tier loses its
  leases.
* **Stealing.** A lease is *live* while its newest record is fresher
  than the TTL **and** its owner's heartbeat is live.  Anything else is
  stolen: the thief writes a lease at ``epoch + 1``.  Lease resolution
  generalises the claim protocol's tie-break — highest epoch wins, ties
  resolve on ``(created, owner)`` — so a resurrected owner's late
  renewal (old epoch) defers to the thief instead of fighting it.
* **Exactly-once ledger.** Every cell's artifact derives only from the
  cell's own identity, so the pathological races (two workers executing
  one cell during a steal window, a resurrected worker storing after
  its thief) store bit-identical duplicates the ledger dedupes by
  digest — the campaign module's "ugly, never wrong" invariant.  The
  chaos bar: a run that loses a worker mid-wave and gains another late
  converges to a ledger digest identical to a fault-free run's.

Fault points (:mod:`repro.faults`): ``coordinator.heartbeat`` fires on
every beat (``crash`` mode kills the worker process mid-wave — the CI
chaos smoke), ``coordinator.lease.renew`` on every lease renewal
(``error`` mode drops renewals, ageing a live worker's leases into
stealability), ``coordinator.steal`` on every steal attempt.

Telemetry: ``campaign.member.join`` / ``campaign.member.leave`` /
``campaign.member.steal`` events, ``coordinator.steals`` /
``coordinator.waves`` counters, ``coordinator.lease.age.seconds``
histogram (lease age at steal time) and a ``coordinator.members``
gauge.
"""

from __future__ import annotations

import os
import secrets
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.errors import ConfigError
from repro.core.samples import Profile
from repro.faults import inject
from repro.runtime.campaign import (
    DEFAULT_CHECKPOINT,
    CampaignReport,
    CampaignSpec,
    _delete_claims,
    _store_op,
    completed_cells,
)
from repro.runtime.service import RunService, batch_budget, get_service
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import span

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LEASE_COMMAND",
    "MEMBER_COMMAND",
    "LeaseRecord",
    "elastic_worker",
    "lease_records",
    "live_members",
    "resolve_lease",
    "run_elastic",
]

#: Command under which member heartbeat documents are stored.
MEMBER_COMMAND = "synapse:campaign-member"

#: Command under which cell lease documents are stored.
LEASE_COMMAND = "synapse:campaign-lease"

#: Seconds a lease (and a member heartbeat) stays live without renewal.
#: Deliberately much shorter than the claim protocol's 900 s staleness
#: horizon: heartbeats renew at TTL/3, so takeover latency after a hard
#: crash is ~one TTL instead of fifteen minutes.
DEFAULT_LEASE_TTL = 60.0

#: Marker documents (leases, heartbeats) older than ``ttl * this`` are
#: garbage — superseded renewals of dead workers — and are expired
#: server-side where the store supports it.
STALE_MARKER_FACTOR = 4.0


def _heartbeat_interval(ttl: float) -> float:
    return max(0.05, ttl / 3.0)


def _poll_interval(ttl: float) -> float:
    """How long a worker with nothing stealable waits before rescanning."""
    return min(1.0, max(0.05, ttl / 4.0))


@dataclass(frozen=True)
class LeaseRecord:
    """One stored lease document, index-plane view (no payload read)."""

    digest: str
    owner: str
    epoch: int
    created: float
    id: str


@dataclass(frozen=True)
class LeaseState:
    """Resolution of one cell's lease records (see :func:`resolve_lease`)."""

    owner: str
    epoch: int
    #: Newest record stamp of the winning ``(owner, epoch)`` lease.
    renewed: float
    #: Live = fresh within the TTL *and* the owner's heartbeat is live.
    alive: bool


def _tag_value(tags: tuple[str, ...], key: str) -> str | None:
    prefix = f"{key}="
    for tag in tags:
        if tag.startswith(prefix):
            return tag[len(prefix):]
    return None


def live_members(
    store: Any, name: str, ttl: float, now: float | None = None
) -> dict[str, float]:
    """Members of campaign ``name`` with a heartbeat fresher than ``ttl``.

    Returns member id -> newest heartbeat stamp.  Index-plane only: a
    membership scan costs one tag-filtered ``entries`` call, no payload
    reads — the same economics as the claim scan it generalises.
    """
    now = time.time() if now is None else now
    newest: dict[str, float] = {}
    for entry in store.entries(MEMBER_COMMAND, tags=[f"campaign={name}"]):
        member = _tag_value(entry.tags, "member")
        if member is not None:
            newest[member] = max(newest.get(member, 0.0), entry.created)
    return {
        member: stamp for member, stamp in newest.items() if now - stamp <= ttl
    }


def lease_records(store: Any, name: str) -> dict[str, list[LeaseRecord]]:
    """All lease documents of campaign ``name``, grouped by cell digest."""
    found: dict[str, list[LeaseRecord]] = {}
    for entry in store.entries(LEASE_COMMAND, tags=[f"campaign={name}"]):
        digest = _tag_value(entry.tags, "lease")
        owner = _tag_value(entry.tags, "owner")
        epoch = _tag_value(entry.tags, "epoch")
        if digest is None or owner is None or epoch is None:
            continue
        try:
            epoch_no = int(epoch)
        except ValueError:
            continue
        found.setdefault(digest, []).append(
            LeaseRecord(digest, owner, epoch_no, entry.created, entry.id)
        )
    return found


def resolve_lease(
    records: list[LeaseRecord],
    now: float,
    ttl: float,
    live: Mapping[str, float] | set | frozenset = frozenset(),
) -> LeaseState | None:
    """Resolve one cell's lease records to their current holder.

    The claim tie-break generalised to epochs: the **highest epoch**
    wins outright (a steal supersedes everything before it), and same-
    epoch races — two workers acquiring or stealing concurrently —
    resolve on the claim protocol's ``(created, owner)`` minimum.  The
    winning lease is *alive* while its newest record is fresher than
    ``ttl`` **and** its owner appears in ``live`` — a deregistered or
    dead owner's lease is stealable immediately, which is what makes
    the SIGTERM drain hand work over without waiting out the TTL.
    """
    if not records:
        return None
    top = max(record.epoch for record in records)
    contenders = [record for record in records if record.epoch == top]
    _, owner = min((record.created, record.owner) for record in contenders)
    renewed = max(
        record.created for record in contenders if record.owner == owner
    )
    alive = (now - renewed <= ttl) and owner in live
    return LeaseState(owner=owner, epoch=top, renewed=renewed, alive=alive)


def _member_doc(name: str, worker: str) -> Profile:
    return Profile(
        command=MEMBER_COMMAND,
        tags={"campaign": name, "member": worker},
        created=time.time(),
    )


def _lease_doc(name: str, digest: str, worker: str, epoch: int) -> Profile:
    return Profile(
        command=LEASE_COMMAND,
        tags={"campaign": name, "lease": digest, "owner": worker, "epoch": epoch},
        created=time.time(),
    )


class _Heartbeat(threading.Thread):
    """Renews the member heartbeat and held leases in the background.

    All store traffic from this thread is serialised against the main
    pull loop through ``lock`` (profile stores are not thread-safe) and
    is strictly best-effort: a failed beat is a *dropped* heartbeat —
    survivable by design, and exactly what the ``coordinator.heartbeat``
    / ``coordinator.lease.renew`` fault points simulate.

    Lease renewal keeps two documents per held cell: the **anchor** (the
    acquire-time document, whose ``created`` stamp is the cell's
    priority in same-epoch tie-breaks) and the newest renewal.
    Renewals past the wave ``deadline`` are withheld — the deadline
    plumbing that lets survivors steal from a worker hung beyond its
    whole :func:`~repro.runtime.service.batch_budget`.
    """

    def __init__(
        self, store: Any, lock: threading.Lock, campaign: str, worker: str,
        ttl: float,
    ) -> None:
        super().__init__(name=f"heartbeat-{worker}", daemon=True)
        self.store = store
        self.lock = lock
        self.campaign = campaign
        self.worker = worker
        self.ttl = ttl
        self.interval = _heartbeat_interval(ttl)
        self._halt = threading.Event()
        self._state = threading.Lock()
        self._member_id: str | None = None
        #: digest -> {"epoch": int, "anchor": pid, "renewal": pid | None}
        self._held: dict[str, dict[str, Any]] = {}
        self._deadline: float | None = None

    # -- main-thread API ------------------------------------------------------

    def register(self) -> None:
        """Write the initial member heartbeat (before the thread starts)."""
        with self.lock:
            pid = _store_op(
                "member.put",
                lambda: self.store.put(_member_doc(self.campaign, self.worker)),
            )
        with self._state:
            self._member_id = pid

    def hold(self, leases: dict[str, tuple[int, str]], budget: float | None) -> None:
        """Start renewing these leases (digest -> (epoch, anchor id)).

        ``budget`` is the wave's wall-clock bound: past it renewals stop
        and the leases age into stealability (``None`` = renew as long
        as this process lives).
        """
        with self._state:
            for digest, (epoch, anchor) in leases.items():
                self._held[digest] = {
                    "epoch": epoch, "anchor": anchor, "renewal": None,
                }
            self._deadline = (
                None if budget is None else time.monotonic() + budget
            )

    def release(self) -> list[str]:
        """Stop renewing all held leases; returns their document ids."""
        with self._state:
            held, self._held = self._held, {}
            self._deadline = None
        ids: list[str] = []
        for state in held.values():
            ids.append(state["anchor"])
            if state["renewal"] is not None:
                ids.append(state["renewal"])
        return ids

    def deregister(self) -> list[str]:
        """Stop the thread; returns every marker id still to delete."""
        self._halt.set()
        self.join(timeout=max(2.0, self.interval * 4))
        ids = self.release()
        with self._state:
            if self._member_id is not None:
                ids.append(self._member_id)
                self._member_id = None
        return ids

    # -- thread body ----------------------------------------------------------

    def run(self) -> None:  # pragma: no cover - exercised via workers
        while not self._halt.wait(self.interval):
            self.beat()

    def beat(self) -> None:
        """One renewal round (public for deterministic tests)."""
        try:
            # ``crash`` rules here kill the whole worker process —
            # the chaos smoke's mid-wave worker loss.  ``error`` rules
            # drop this beat: the member heartbeat ages exactly as if
            # the network had eaten it.
            inject("coordinator.heartbeat", key=self.worker)
        except Exception:  # noqa: BLE001 - injected drop
            return
        self._renew_member()
        self._renew_leases()

    def _renew_member(self) -> None:
        try:
            with self.lock:
                pid = self.store.put(_member_doc(self.campaign, self.worker))
                with self._state:
                    previous, self._member_id = self._member_id, pid
                if previous is not None:
                    _delete_claims(self.store, [previous])
        except Exception:  # noqa: BLE001 - dropped heartbeat, survivable
            pass

    def _renew_leases(self) -> None:
        with self._state:
            past_deadline = (
                self._deadline is not None
                and time.monotonic() > self._deadline
            )
            held = dict(self._held)
        if past_deadline:
            # The wave overran its whole batch budget: stop defending
            # its leases so survivors can steal the cells.
            return
        for digest, state in held.items():
            try:
                inject("coordinator.lease.renew", key=self.worker)
                with self.lock:
                    pid = self.store.put(
                        _lease_doc(
                            self.campaign, digest, self.worker, state["epoch"]
                        )
                    )
                    stale = None
                    with self._state:
                        current = self._held.get(digest)
                        if current is None or current["anchor"] != state["anchor"]:
                            stale = pid  # released while we renewed
                        else:
                            stale, current["renewal"] = current["renewal"], pid
                    if stale is not None:
                        _delete_claims(self.store, [stale])
            except Exception:  # noqa: BLE001 - dropped renewal, survivable
                continue


def _expire_stale_markers(store: Any, ttl: float) -> None:
    """Best-effort server-side expiry of superseded marker documents."""
    expire = getattr(store, "expire_markers", None)
    if expire is None:
        return
    try:
        expire(MEMBER_COMMAND, ttl * STALE_MARKER_FACTOR)
        expire(LEASE_COMMAND, ttl * STALE_MARKER_FACTOR)
    except Exception:  # noqa: BLE001 - cleanup must never fail a wave
        pass


def _gc_dead_markers(
    store: Any, name: str, ttl: float, now: float,
    horizon: float | None = None,
) -> None:
    """Best-effort deletion of marker docs no survivor will ever need.

    Hard-killed workers leave their last heartbeat and lease documents
    behind forever; once those age past the stale horizon (several
    TTLs — long dead, long since stolen from) they are pure garbage
    that every membership/lease scan would re-parse.  Live documents
    are renewed every TTL/3, so nothing fresh is ever touched.  A
    still-held lease's *anchor* document can age past the horizon on a
    very long wave; deleting it merely shifts the owner's same-epoch
    tie-break stamp to its newest renewal, which matters only during
    acquisition races, never after a lease is won.

    ``horizon`` overrides the default several-TTL staleness bound; the
    fleet parent sweeps with ``horizon=ttl`` after every child has
    exited, when anything older than one TTL is dead by definition
    (live documents — a still-attached ``--join`` worker's — are
    renewed every TTL/3 and stay fresher than that).
    """
    if horizon is None:
        horizon = ttl * STALE_MARKER_FACTOR
    try:
        doomed = [
            entry.id
            for command in (MEMBER_COMMAND, LEASE_COMMAND)
            for entry in store.entries(command, tags=[f"campaign={name}"])
            if now - entry.created > horizon
        ]
    except Exception:  # noqa: BLE001 - GC must never fail a wave
        return
    _delete_claims(store, doomed)


def _gc_worker_markers(store: Any, name: str, workers: list[str]) -> None:
    """Best-effort deletion of the named workers' marker documents."""
    targets = set(workers)
    try:
        doomed = [
            entry.id
            for command, key in (
                (MEMBER_COMMAND, "member"), (LEASE_COMMAND, "owner"),
            )
            for entry in store.entries(command, tags=[f"campaign={name}"])
            if _tag_value(entry.tags, key) in targets
        ]
    except Exception:  # noqa: BLE001 - cleanup must never fail the fleet
        return
    _delete_claims(store, doomed)


def elastic_worker(
    spec: CampaignSpec | Mapping[str, Any],
    store: Any,
    worker: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    batch: int = DEFAULT_CHECKPOINT,
    processes: int | None = None,
    service: RunService | None = None,
    limit: int | None = None,
    progress: Any = None,
    stop: Callable[[], bool] | None = None,
) -> CampaignReport:
    """Run one elastic worker against a campaign's shared store ledger.

    The worker joins the campaign's membership (heartbeat + background
    renewal), then pulls **leased batches** of pending cells until the
    ledger is complete: free cells are leased outright, cells whose
    lease has gone stale — owner crashed, hung past its batch budget,
    or drained away — are stolen at a bumped epoch.  Each wave is
    executed through the run service and persisted before its leases
    are released, so an interruption loses at most one wave of work and
    any number of workers can run this function concurrently against
    the same store (locally or from different hosts).

    ``stop`` drains gracefully: the in-flight wave finishes and
    persists, held leases are released and the membership deregisters —
    survivors steal the remainder immediately instead of waiting out
    ``lease_ttl``.  ``limit`` caps the cells executed by *this* worker.

    Returns the familiar :class:`CampaignReport`; ``remaining`` counts
    sweep-wide missing cells, so a worker that drained early (or
    deferred cells to live rivals) reports ``complete=False`` while the
    fleet as a whole still converges.
    """
    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    if worker is None:
        worker = f"{os.getpid():x}-{secrets.token_hex(4)}"
    if any(c in worker for c in "=,\n"):
        raise ConfigError(
            f"worker name {worker!r} must be free of '=', ',' and newlines"
        )
    if lease_ttl <= 0:
        raise ConfigError("lease_ttl must be positive")
    svc = service if service is not None else get_service()
    bus = get_bus()
    registry = get_registry()
    name = spec.name
    cells = {cell.digest: cell for cell in spec.cells()}
    lock = threading.Lock()

    def locked_op(what: str, fn: Callable[[], Any]) -> Any:
        with lock:
            return _store_op(what, fn)

    done_at_start = locked_op(
        "completed_cells", lambda: completed_cells(store, name)
    )
    skipped = len(set(cells) & done_at_start)

    executed = 0
    deferred = 0
    stolen = 0
    truncated = False
    interrupted = False
    failures: list[dict[str, str]] = []
    failed_digests: set[str] = set()
    start = time.perf_counter()
    step = max(1, batch)

    heartbeat = _Heartbeat(store, lock, name, worker, lease_ttl)
    with span(
        "campaign.run", level="info", campaign=name, total=len(cells),
        skipped=skipped, owner=worker, elastic=True,
    ) as campaign_span:
        heartbeat.register()
        heartbeat.start()
        members = live_members(store, name, lease_ttl)
        registry.set_gauge("coordinator.members", float(len(members)))
        bus.event(
            "campaign.member.join", campaign=name, member=worker,
            members=sorted(members), lease_ttl=lease_ttl,
        )
        bus.event(
            "campaign.start", campaign=name, total=len(cells),
            skipped=skipped, assigned=0, waves=0, shard=None, owner=worker,
        )
        wave_no = 0
        try:
            while True:
                if stop is not None and stop():
                    interrupted = True
                    bus.event(
                        "campaign.interrupted", level="warning", campaign=name,
                        wave=wave_no, executed=executed, member=worker,
                    )
                    break
                if limit is not None and executed >= limit:
                    truncated = True
                    break
                done = locked_op(
                    "completed_cells", lambda: completed_cells(store, name)
                )
                pending = [
                    digest for digest in cells if digest not in done
                ]
                if not pending:
                    break
                workable = [d for d in pending if d not in failed_digests]
                if not workable:
                    break  # everything left already failed here; give up
                now = time.time()
                with lock:
                    _expire_stale_markers(store, lease_ttl)
                    members = live_members(store, name, lease_ttl, now)
                    leases = _store_op(
                        "lease.scan", lambda: lease_records(store, name)
                    )
                registry.set_gauge("coordinator.members", float(len(members)))
                # Deal this wave: free cells first, then stale leases to
                # steal.  Cells under a live rival's lease are deferred.
                step_now = step
                if limit is not None:
                    step_now = min(step, limit - executed)
                to_acquire: list[tuple[str, int]] = []
                to_steal: list[tuple[str, int, LeaseState]] = []
                blocked = 0
                for digest in workable:
                    if len(to_acquire) + len(to_steal) >= step_now:
                        break
                    state = resolve_lease(
                        leases.get(digest, []), now, lease_ttl, members
                    )
                    if state is None:
                        to_acquire.append((digest, 1))
                    elif state.alive and state.owner != worker:
                        blocked += 1
                    elif state.alive and state.owner == worker:
                        # A leftover of our own (failed release): renew
                        # in place at the same epoch.
                        to_acquire.append((digest, state.epoch))
                    else:
                        to_steal.append((digest, state.epoch + 1, state))
                if not to_acquire and not to_steal:
                    if blocked and (set(members) - {worker}):
                        # Live rivals hold everything pending: wait for
                        # leases to resolve rather than busy-scanning.
                        if _wait(stop, _poll_interval(lease_ttl)):
                            continue
                        interrupted = True
                        break
                    if not blocked:
                        # Nothing acquirable and nobody live holds the
                        # pending cells (all remaining failed here).
                        break
                    # Leases look alive but their owners are gone — the
                    # records will age past the TTL; rescan shortly.
                    if _wait(stop, _poll_interval(lease_ttl)):
                        continue
                    interrupted = True
                    break
                wanted = list(to_acquire)
                stolen_now = 0
                for digest, epoch, state in to_steal:
                    try:
                        # An injected fault here is a failed takeover
                        # (store rejected the steal write): the cell
                        # stays deferred this wave and is re-examined
                        # on the next scan.
                        inject("coordinator.steal", key=digest)
                    except Exception:  # noqa: BLE001 - injected steal failure
                        deferred += 1
                        continue
                    age = now - state.renewed
                    registry.inc("coordinator.steals")
                    registry.observe("coordinator.lease.age.seconds", age)
                    bus.event(
                        "campaign.member.steal", level="warning",
                        campaign=name, member=worker, cell=digest,
                        from_owner=state.owner, epoch=epoch, lease_age=age,
                    )
                    wanted.append((digest, epoch))
                    stolen_now += 1
                stolen += stolen_now
                if not wanted:
                    if _wait(stop, _poll_interval(lease_ttl)):
                        continue
                    interrupted = True
                    break
                docs = [
                    _lease_doc(name, digest, worker, epoch)
                    for digest, epoch in wanted
                ]
                anchor_ids = locked_op(
                    "lease.put", lambda: list(store.put_many(docs))
                )
                anchors = {
                    digest: (epoch, anchor)
                    for (digest, epoch), anchor in zip(wanted, anchor_ids)
                }
                # Confirm: re-read and keep only the cells we actually
                # won — a racing rival acquiring/stealing the same cell
                # resolves deterministically for everyone.
                with lock:
                    confirm = _store_op(
                        "lease.confirm", lambda: lease_records(store, name)
                    )
                now = time.time()
                won: dict[str, tuple[int, str]] = {}
                lost_ids: list[str] = []
                for digest, (epoch, anchor) in anchors.items():
                    state = resolve_lease(
                        confirm.get(digest, []), now, lease_ttl, {worker: now}
                    )
                    if (
                        state is not None
                        and state.owner == worker
                        and state.epoch == epoch
                    ):
                        won[digest] = (epoch, anchor)
                    else:
                        deferred += 1
                        lost_ids.append(anchor)
                if lost_ids:
                    with lock:
                        _delete_claims(store, lost_ids)
                if not won:
                    continue
                wave_no += 1
                wave_cells = [cells[digest] for digest in won]
                wave_executed = wave_failed = 0
                registry.inc("coordinator.waves")
                with span(
                    "campaign.wave", level="info", campaign=name,
                    wave=wave_no, cells=len(wave_cells), member=worker,
                    stolen=stolen_now,
                ) as wave_span:
                    requests, runnable = [], []
                    for cell in wave_cells:
                        try:
                            requests.append(cell.to_request())
                            runnable.append(cell)
                        except Exception as exc:  # unknown app, bad config
                            failures.append(
                                {"cell": cell.digest, "app": cell.app,
                                 "machine": cell.machine, "error": repr(exc)}
                            )
                            failed_digests.add(cell.digest)
                            wave_failed += 1
                    heartbeat.hold(won, batch_budget(requests))
                    try:
                        results = svc.run(
                            requests, processes=processes, rethrow=False
                        )
                        artifacts = []
                        for cell, result in zip(runnable, results):
                            if result.ok:
                                artifacts.append(cell.artifact(result.value))
                                executed += 1
                                wave_executed += 1
                            else:
                                failures.append(
                                    {"cell": cell.digest, "app": cell.app,
                                     "machine": cell.machine,
                                     "error": result.error or "unknown error"}
                                )
                                failed_digests.add(cell.digest)
                                wave_failed += 1
                        if artifacts:
                            locked_op(
                                "artifacts.put",
                                lambda: store.put_many(artifacts),
                            )
                    finally:
                        with lock:
                            _delete_claims(store, heartbeat.release())
                    wave_span.set(
                        executed=wave_executed, failed=wave_failed
                    )
                with lock:
                    _gc_dead_markers(store, name, lease_ttl, time.time())
                summary = {
                    "campaign": name,
                    "member": worker,
                    "wave": wave_no,
                    "waves": wave_no,
                    "total": len(cells),
                    "claimed": len(wave_cells),
                    "executed": wave_executed,
                    "failed": wave_failed,
                    "deferred": deferred,
                    "stolen": stolen_now,
                    "completed": skipped + executed,
                    "pending": len(pending) - wave_executed,
                    "elapsed": time.perf_counter() - start,
                }
                bus.event("campaign.wave.finish", **summary)
                if progress is not None:
                    progress(dict(summary))
        finally:
            with lock:
                _delete_claims(store, heartbeat.deregister())
            bus.event(
                "campaign.member.leave", campaign=name, member=worker,
                executed=executed, stolen=stolen, interrupted=interrupted,
            )
        campaign_span.set(
            executed=executed, failed=len(failures), deferred=deferred,
            stolen=stolen, interrupted=interrupted,
        )
        bus.event(
            "campaign.finish", campaign=name, executed=executed,
            failed=len(failures), deferred=deferred, interrupted=interrupted,
            seconds=time.perf_counter() - start,
        )

    final_done = locked_op(
        "completed_cells", lambda: completed_cells(store, name)
    )
    remaining_failures = [
        failure for failure in failures if failure["cell"] not in final_done
    ]
    return CampaignReport(
        name=name,
        total=len(cells),
        # ``skipped`` counts everything completed by someone else — at
        # start or by rivals while we ran — so ``remaining`` reflects
        # the sweep-wide ledger state, exactly like sharded reports.
        skipped=len(set(cells) & final_done) - executed,
        executed=executed,
        failed=remaining_failures,
        seconds=time.perf_counter() - start,
        truncated=truncated,
        shard=None,
        assigned=executed,
        deferred=deferred,
        interrupted=interrupted,
    )


def _wait(stop: Callable[[], bool] | None, seconds: float) -> bool:
    """Sleep in small stop-aware slices; False when asked to stop."""
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        if stop is not None and stop():
            return False
        time.sleep(min(0.02, seconds))
    return True


# -- local fleets -------------------------------------------------------------


def _fleet_child(
    spec_data: dict[str, Any],
    store_url: str,
    worker: str,
    lease_ttl: float,
    batch: int,
    queue: Any,
) -> None:
    """Entry point of one fleet worker process."""
    import signal  # noqa: PLC0415 - child-only setup

    from repro.storage import open_store  # noqa: PLC0415 - child-only

    stop_flag = {"stop": False}

    def _drain(signum, frame) -> None:  # noqa: ARG001 - signal signature
        stop_flag["stop"] = True

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    store = open_store(store_url)
    report = elastic_worker(
        CampaignSpec.from_dict(spec_data),
        store,
        worker=worker,
        lease_ttl=lease_ttl,
        batch=batch,
        processes=1,  # serial inside the child; the fleet is the pool
        stop=lambda: stop_flag["stop"],
    )
    try:
        queue.put(report.to_dict())
    except Exception:  # noqa: BLE001 - parent may be gone
        pass


def run_elastic(
    spec: CampaignSpec | Mapping[str, Any],
    store_url: str,
    workers: int = 3,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    batch: int = DEFAULT_CHECKPOINT,
    stop: Callable[[], bool] | None = None,
) -> CampaignReport:
    """Spawn a local fleet of elastic workers and converge the campaign.

    Each worker is a separate OS process with its own store handle (the
    fleet shares state only through the store, exactly like a
    multi-host deployment) executing cells serially — the fleet *is*
    the pool.  Workers inherit the active fault plan through
    ``REPRO_FAULTS``, so chaos rules with cross-process ``fuse`` files
    can kill exactly one of them mid-wave; survivors steal the dead
    worker's leases and the campaign still converges.  A worker can be
    attached to the same campaign later (another ``run_elastic``, a
    ``--join`` CLI invocation, a different host) — late joiners simply
    become members and start pulling.

    ``stop`` drains the whole fleet: children receive SIGTERM, finish
    their in-flight wave, release leases and deregister.  The report
    aggregates the fleet run from the ledger itself (a crashed child
    reports nothing — the ledger is the truth).
    """
    import multiprocessing  # noqa: PLC0415 - fleet-only dependency

    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    if workers < 1:
        raise ConfigError("run_elastic needs at least one worker")
    if store_url in ("memory://", "mongo://"):
        raise ConfigError(
            f"a fleet shares state only through the store; {store_url!r} is "
            "process-private — use a file:// or persistent mongo:// store"
        )
    from repro.storage import open_store  # noqa: PLC0415 (cycle)

    store = open_store(store_url)
    cells = {cell.digest for cell in spec.cells()}
    done_before = completed_cells(store, spec.name) & cells
    start = time.perf_counter()

    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    token = secrets.token_hex(2)
    names = [f"w{index}-{token}" for index in range(workers)]
    children = [
        ctx.Process(
            target=_fleet_child,
            args=(
                spec_to_dict(spec), store_url, name,
                lease_ttl, batch, queue,
            ),
            daemon=False,
        )
        for name in names
    ]
    for child in children:
        child.start()
    get_bus().event(
        "campaign.fleet.start", campaign=spec.name, workers=workers,
        lease_ttl=lease_ttl,
    )
    interrupted = False
    try:
        while any(child.is_alive() for child in children):
            if stop is not None and stop() and not interrupted:
                interrupted = True
                for child in children:
                    if child.is_alive():
                        child.terminate()  # SIGTERM -> graceful drain
            for child in children:
                child.join(timeout=0.05)
    finally:
        for child in children:
            if child.is_alive():
                child.terminate()
                child.join(timeout=5.0)

    reports: list[dict[str, Any]] = []
    try:
        while True:
            reports.append(queue.get_nowait())
    except Exception:  # noqa: BLE001 - queue drained (or a child died)
        pass
    crashed = sum(1 for child in children if child.exitcode not in (0, None))
    # Crashed children leak their last heartbeat/lease documents.  All
    # children have exited, so every marker naming one of *our* workers
    # is certainly dead — sweep them (plus anything older than one TTL)
    # so a chaos-heavy fleet leaves the store as clean as a calm one.
    # A still-attached foreign ``--join`` worker's fresh documents are
    # untouched.
    _gc_worker_markers(store, spec.name, names)
    _gc_dead_markers(store, spec.name, lease_ttl, time.time(), horizon=lease_ttl)
    done_after = completed_cells(store, spec.name) & cells
    executed = len(done_after - done_before)
    failures: list[dict[str, str]] = []
    seen_failed: set[str] = set()
    for report in reports:
        for failure in report.get("failed", ()):
            cell = failure.get("cell")
            if cell in done_after or cell in seen_failed:
                continue
            seen_failed.add(cell)
            failures.append(failure)
    interrupted = interrupted or any(
        report.get("interrupted") for report in reports
    )
    get_bus().event(
        "campaign.fleet.finish", campaign=spec.name, workers=workers,
        crashed=crashed, executed=executed, failed=len(failures),
        interrupted=interrupted, seconds=time.perf_counter() - start,
    )
    return CampaignReport(
        name=spec.name,
        total=len(cells),
        skipped=len(done_before),
        executed=executed,
        failed=failures,
        seconds=time.perf_counter() - start,
        shard=None,
        assigned=executed,
        deferred=sum(int(report.get("deferred", 0)) for report in reports),
        interrupted=interrupted,
    )


def spec_to_dict(spec: CampaignSpec) -> dict[str, Any]:
    """Serialise a spec back to its JSON form (fleet child handoff)."""
    data: dict[str, Any] = {
        "name": spec.name,
        "kind": spec.kind,
        "apps": list(spec.apps),
        "machines": list(spec.machines),
        "seeds": list(spec.seeds),
        "repeats": spec.repeats,
        "noisy": spec.noisy,
        "config": dict(spec.config),
        "tags": dict(spec.tags),
    }
    if spec.policy is not None:
        data["policy"] = {
            "retries": spec.policy.retries,
            "timeout": spec.policy.timeout,
            "backoff": spec.policy.backoff,
            "jitter": spec.policy.jitter,
        }
    return data
