"""Declarative campaigns: sweeps with a resumable on-store ledger.

A *campaign* is a declarative description of an experiment sweep — the
cross product of application specs, machine models, noise seeds and
repeats — executed through the :class:`~repro.runtime.service.RunService`
and recorded in a :class:`~repro.storage.base.ProfileStore`.

Every cell of the sweep has a deterministic identity (a digest over the
cell's parameters *and* the spec settings that influence its result);
the stored artifact carries that identity in its tags
(``campaign=<name>``, ``cell=<digest>``).  The store therefore *is* the
campaign ledger: re-running a campaign queries it first and only
executes the missing cells, so an interrupted sweep resumes where it
stopped and a completed sweep is a no-op.  Because each cell's noise
derives from its own ``(seed, repeat)`` identity — never from execution
order — a resumed campaign's ledger is identical to an uninterrupted
run's.

Spec form (dict or JSON file)::

    {
      "name": "sweep1",
      "kind": "profile",                      // or "run" (raw engine)
      "apps": ["gromacs:iterations=50000", "sleeper:sleep_seconds=2"],
      "machines": ["thinkie", "comet"],
      "seeds": [0, 1],                        // default [0]
      "repeats": 2,                           // default 1
      "noisy": true,                          // default true
      "config": {"sample_rate": 2.0},         // SynapseConfig kwargs
      "tags": {"experiment": "demo"},         // extra tags on every cell
      "policy": {"retries": 1, "timeout": null, "backoff": 0.0}
    }

Sharding (multi-host sweeps): ``run_campaign(spec, store, shard=(i, n))``
deterministically partitions the *pending* cells by cell digest, so *n*
hosts sharing one store ledger execute disjoint subsets — any shard's
re-run completes only the union's missing cells, and an unsharded run
finishes whatever is left.  Sharded invocations additionally *claim*
their wave's cells in the ledger (lightweight marker documents tagged
``claim=<digest>``) before executing them: two claim-checking
invocations that overlap — the same shard restarted, racing shards —
defer to the earlier claim instead of computing a cell twice.
Unsharded runs skip the protocol by default (pass ``claim=True`` to
opt in), so racing an unsharded run against a live shard can double-
execute a cell.  Claims are deleted once their wave is stored;
leftovers from a killed shard go stale after ``claim_ttl`` seconds and
are ignored.  Because every cell's result derives only from its own
identity, any double execution stores a bit-identical duplicate that
resume and analysis dedupe by digest — ugly, never wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import secrets
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.errors import ConfigError, is_retryable
from repro.core.samples import Profile
from repro.faults import inject
from repro.runtime.service import RunPolicy, RunRequest, RunService, get_service
from repro.telemetry.events import get_bus
from repro.telemetry.spans import span
from repro.util.tables import Table

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignSpec",
    "claims",
    "comparable_artifact",
    "completed_cells",
    "ledger",
    "ledger_digest",
    "parse_shard",
    "run_campaign",
    "shard_cells",
    "shard_index",
]

_KINDS = ("profile", "run")
_SPEC_KEYS = frozenset(
    {"name", "kind", "apps", "machines", "seeds", "repeats", "noisy", "config",
     "tags", "policy"}
)

#: Cells stored per checkpoint wave: an interrupted sweep keeps every
#: finished wave in the ledger and resumes from the next one.
DEFAULT_CHECKPOINT = 8

#: Command under which cell-claim markers are stored (kept distinct from
#: every profilable command so claims never collide with real artifacts).
CLAIM_COMMAND = "synapse:campaign-claim"

#: Seconds a foreign claim stays live.  A claim older than this with no
#: stored artifact belongs to a dead shard and is ignored; fresher ones
#: mark a concurrent shard working the cell right now.
DEFAULT_CLAIM_TTL = 900.0

#: Attempts per ledger store operation (scans, artifact/claim writes)
#: before a transient store failure fails the campaign.
STORE_ATTEMPTS = 3


def _store_op(what: str, fn: Callable[[], Any]) -> Any:
    """Run one ledger store operation with short transient-fault retries.

    Long campaigns should not die to a single flaky store call (NFS
    hiccup, injected chaos): retryable failures (per
    :func:`~repro.core.errors.is_retryable`) get
    :data:`STORE_ATTEMPTS` tries with a small deterministic-jitter
    sleep; fatal errors and exhausted budgets propagate.  A retried
    ``put_many`` that partially landed can store duplicate artifacts —
    bit-identical, deduped by digest on resume and analysis (the
    module-docstring invariant: ugly, never wrong).
    """
    for attempt in range(1, STORE_ATTEMPTS + 1):
        try:
            return fn()
        except Exception as exc:  # noqa: BLE001 - classified below
            if attempt >= STORE_ATTEMPTS or not is_retryable(exc):
                raise
            get_bus().event(
                "campaign.store.retry", level="warning", op=what,
                attempt=attempt, attempts=STORE_ATTEMPTS, error=repr(exc),
            )
            # Deterministic full jitter (seeded per op/attempt): retries
            # desynchronise across shards without touching global RNG.
            time.sleep(
                0.05 * attempt * random.Random(f"{what}|{attempt}").random()
            )


def _str_list(value: Any, what: str) -> tuple[str, ...]:
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise ConfigError(f"campaign {what} must be a list of strings")
    items = tuple(str(item) for item in value)
    if not items:
        raise ConfigError(f"campaign {what} must not be empty")
    return items


@dataclass(frozen=True)
class CampaignSpec:
    """Validated campaign description (see module docstring for the form)."""

    name: str
    apps: tuple[str, ...]
    machines: tuple[str, ...]
    kind: str = "profile"
    seeds: tuple[int, ...] = (0,)
    repeats: int = 1
    noisy: bool = True
    config: dict[str, Any] = field(default_factory=dict)
    tags: dict[str, Any] = field(default_factory=dict)
    policy: RunPolicy | None = None

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in "=,\n"):
            raise ConfigError(
                f"campaign name {self.name!r} must be non-empty and free of '=', ','"
            )
        if self.kind not in _KINDS:
            raise ConfigError(f"campaign kind must be one of {_KINDS}, not {self.kind!r}")
        if self.repeats < 1:
            raise ConfigError("campaign repeats must be >= 1")
        if not self.seeds:
            raise ConfigError("campaign seeds must not be empty")
        # Duplicates would expand to digest-identical cells: one stored
        # artifact would then pose as several independent measurements
        # (n inflated, std 0) in the campaign analysis.
        for what, values in (
            ("apps", self.apps), ("machines", self.machines),
            ("seeds", self.seeds),
        ):
            if len(set(values)) != len(values):
                raise ConfigError(f"campaign {what} must not contain duplicates")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise ConfigError(f"unknown campaign spec keys: {sorted(unknown)}")
        if "name" not in data or "apps" not in data or "machines" not in data:
            raise ConfigError("campaign specs need 'name', 'apps' and 'machines'")
        policy = data.get("policy")
        if policy is not None:
            try:
                policy = RunPolicy.from_dict(policy)
            except ValueError as exc:
                raise ConfigError(f"invalid campaign policy: {exc}") from exc
        return cls(
            name=str(data["name"]),
            apps=_str_list(data["apps"], "apps"),
            machines=_str_list(data["machines"], "machines"),
            kind=str(data.get("kind", "profile")),
            seeds=tuple(int(seed) for seed in data.get("seeds", (0,))),
            repeats=int(data.get("repeats", 1)),
            noisy=bool(data.get("noisy", True)),
            config=dict(data.get("config", {})),
            tags=dict(data.get("tags", {})),
            policy=policy,
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "CampaignSpec":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read campaign spec {path}: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ConfigError(f"campaign spec {path} must be a JSON object")
        return cls.from_dict(data)

    @property
    def n_cells(self) -> int:
        return len(self.apps) * len(self.machines) * len(self.seeds) * self.repeats

    def cells(self) -> list["CampaignCell"]:
        """Expand the sweep into its cells, in deterministic spec order."""
        cells = []
        for app in self.apps:
            for machine in self.machines:
                for seed in self.seeds:
                    for rep in range(self.repeats):
                        cells.append(CampaignCell(self, app, machine, seed, rep))
        return cells


@dataclass(frozen=True)
class CampaignCell:
    """One (app, machine, seed, repeat) point of a campaign sweep."""

    spec: CampaignSpec
    app: str
    machine: str
    seed: int
    rep: int

    @property
    def digest(self) -> str:
        """Deterministic cell identity.

        Hashes the cell coordinates plus every spec setting that
        influences the cell's stored artifact (kind, noisy, config,
        tags), so editing the spec invalidates — rather than silently
        reuses — old cells.  The run policy is deliberately *not*
        hashed: retries/timeouts change how stubbornly a cell executes,
        never what it produces.
        """
        payload = json.dumps(
            [
                self.spec.name,
                self.spec.kind,
                self.app,
                self.machine,
                self.seed,
                self.rep,
                bool(self.spec.noisy),
                sorted(self.spec.config.items()),
                sorted((str(k), str(v)) for k, v in self.spec.tags.items()),
            ],
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def cell_tags(self) -> dict[str, Any]:
        return {
            **self.spec.tags,
            "campaign": self.spec.name,
            "cell": self.digest,
            "app": self.app,
            "machine": self.machine,
            "seed": self.seed,
            "rep": self.rep,
        }

    def to_request(self) -> RunRequest:
        """The declarative run request this cell executes as."""
        from repro.apps.registry import parse_app  # noqa: PLC0415 (cycle)

        app = parse_app(self.app)
        if self.spec.kind == "profile":
            return RunRequest(
                kind="profile",
                target=app,
                machine=self.machine,
                config=dict(self.spec.config),
                noisy=self.spec.noisy,
                seed=self.seed,
                index=self.rep + 1,
                tags=self.cell_tags(),
                command=app.command(),
                key=self.digest,
                policy=self.spec.policy,
            )
        return RunRequest(
            kind="engine",
            target=app,
            machine=self.machine,
            noisy=self.spec.noisy,
            seed=self.seed,
            index=self.rep + 1,
            reduce=_engine_summary,
            key=self.digest,
            policy=self.spec.policy,
            metadata={"command": app.command()},
        )

    def artifact(self, value: Any):
        """The ledger document for this cell's run outcome.

        ``profile`` cells store the profile itself; ``run`` cells store
        a summary profile (statics only) so both kinds live in the same
        store and resume the same way.
        """
        from repro.apps.registry import parse_app  # noqa: PLC0415 (cycle)
        from repro.sim.machines import get_machine  # noqa: PLC0415 (cycle)

        if self.spec.kind == "profile":
            return value
        statics = dict(value["totals"])
        statics["time.runtime_rusage"] = value["duration"]
        return Profile(
            command=parse_app(self.app).command(),
            tags=self.cell_tags(),
            machine=dict(get_machine(self.machine).info()),
            config=dict(self.spec.config),
            statics=statics,
            info={"campaign_kind": "run", "phase_bounds": value["phase_bounds"]},
        )


def _engine_summary(record: Any) -> dict[str, Any]:
    """Worker-side reducer for ``run`` cells: totals, not histories."""
    return {
        "duration": record.duration,
        "totals": record.totals(),
        "phase_bounds": [list(bounds) for bounds in record.phase_bounds],
    }


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation."""

    name: str
    total: int
    skipped: int
    executed: int
    failed: list[dict[str, str]] = field(default_factory=list)
    seconds: float = 0.0
    truncated: bool = False
    #: ``"i/n"`` when this invocation executed one shard of the sweep.
    shard: str | None = None
    #: Pending cells this invocation was responsible for (the shard's
    #: partition of the missing cells; equals ``total - skipped`` when
    #: unsharded).
    assigned: int = 0
    #: Cells left to a concurrent invocation holding an earlier claim.
    deferred: int = 0
    #: True when a ``stop`` request (SIGTERM/SIGINT drain) ended the
    #: sweep early: the current wave was finished and persisted, the
    #: remaining waves were never started.
    interrupted: bool = False

    @property
    def remaining(self) -> int:
        """Cells still missing from the ledger after this invocation.

        Sweep-wide view: for a shard run this includes every other
        shard's pending cells, so ``complete`` only turns true once the
        *union* of shards has filled the ledger.
        """
        return self.total - self.skipped - self.executed

    @property
    def complete(self) -> bool:
        return self.remaining == 0 and not self.failed

    def to_dict(self) -> dict[str, Any]:
        return {
            "campaign": self.name,
            "total": self.total,
            "skipped": self.skipped,
            "executed": self.executed,
            "failed": list(self.failed),
            "remaining": self.remaining,
            "complete": self.complete,
            "seconds": self.seconds,
            "truncated": self.truncated,
            "shard": self.shard,
            "assigned": self.assigned,
            "deferred": self.deferred,
            "interrupted": self.interrupted,
        }

    def table(self) -> Table:
        shard = f" shard {self.shard}" if self.shard is not None else ""
        state = "complete" if self.complete else "partial"
        if self.interrupted:
            state = "interrupted (drained)"
        table = Table(
            ["cells", "skipped (ledger)", "executed", "failed", "deferred",
             "remaining"],
            title=(
                f"campaign {self.name!r}{shard}: {state} "
                f"in {self.seconds:.2f}s"
            ),
        )
        table.add_row(
            [self.total, self.skipped, self.executed, len(self.failed),
             self.deferred, self.remaining]
        )
        return table


def parse_shard(shard: Any) -> tuple[int, int]:
    """Normalise a shard selector into ``(index, count)``.

    Accepts an ``(index, count)`` pair or the CLI spelling ``"i/n"``.
    """
    if isinstance(shard, str):
        head, sep, tail = shard.partition("/")
        if not sep:
            raise ConfigError(f"shard must look like 'i/n', not {shard!r}")
        shard = (head, tail)
    try:
        index, count = shard
        index, count = int(index), int(count)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"shard must be an (index, count) pair or 'i/n' string, not {shard!r}"
        ) from exc
    if count < 1 or not 0 <= index < count:
        raise ConfigError(
            f"shard index must satisfy 0 <= index < count, got {index}/{count}"
        )
    return index, count


def shard_index(digest: str, count: int) -> int:
    """Deterministic shard owning a cell digest (digests are hex)."""
    return int(digest, 16) % count


def shard_cells(cells: list[CampaignCell], shard: Any) -> list[CampaignCell]:
    """The subset of ``cells`` that shard ``(index, count)`` executes.

    Partitioning is by cell digest, so it is independent of execution
    order, ledger state and which cells other shards have finished —
    the property that makes *n* hosts sharing one store collision-free.
    """
    index, count = parse_shard(shard)
    return [cell for cell in cells if shard_index(cell.digest, count) == index]


def claims(store: Any, name: str) -> dict[str, list[tuple[float, str]]]:
    """Live + stale claim markers of campaign ``name``.

    Returns cell digest -> list of ``(created, owner)`` pairs, one per
    marker.  Callers decide staleness (see ``claim_ttl``).  Everything a
    claim carries (digest, owner, creation time) lives in its tags, so
    the scan runs on the store's index plane — no marker payloads are
    deserialised, and the per-wave read-back cost is O(live markers)
    instead of O(ledger).
    """
    found: dict[str, list[tuple[float, str]]] = {}
    for entry in store.entries(CLAIM_COMMAND, tags=[f"campaign={name}"]):
        digest = owner = None
        for tag in entry.tags:
            if tag.startswith("claim="):
                digest = tag[len("claim="):]
            elif tag.startswith("owner="):
                owner = tag[len("owner="):]
        if digest and owner:
            found.setdefault(digest, []).append((entry.created, owner))
    return found


def _claim_wave(
    store: Any,
    name: str,
    wave: list[CampaignCell],
    owner: str,
    ttl: float,
    scan: bool = True,
) -> tuple[list[CampaignCell], list[CampaignCell], list[str], bool]:
    """Claim a wave's cells; returns ``(mine, deferred, claim_ids, rivals)``.

    Writes one marker per cell, re-reads all markers, and keeps only the
    cells whose earliest *live* claim is ours — ties and races resolve
    deterministically on ``(created, owner)``.  Cells lost to an earlier
    live claim are deferred (another invocation is computing them right
    now); claims older than ``ttl`` belong to dead invocations and are
    ignored.

    ``scan=False`` skips the read-back (the caller saw no live foreign
    claims recently): markers are still written so *rivals* defer to
    us, but the wave runs unfiltered.  ``rivals`` reports whether any
    live foreign claim was seen, letting the caller decide whether the
    next wave needs a scan — the read-back is an index-plane scan of
    the campaign's markers (O(live claims), no payloads), but even that
    only makes sense to pay per wave while someone else is actually in
    there.
    """
    now = time.time()
    markers = [
        Profile(
            command=CLAIM_COMMAND,
            tags={"campaign": name, "claim": cell.digest, "owner": owner},
            info={"cell": cell.digest},
            created=now,
        )
        for cell in wave
    ]
    claim_ids = list(
        _store_op("claim.put", lambda: store.put_many(markers))
    )
    if not scan:
        return list(wave), [], claim_ids, False
    try:
        # Chaos plane: a fault here exercises the marker-cleanup path
        # below (a read-back failure must not leak this wave's claims).
        inject("campaign.claim", key=name)
        existing = claims(store, name)
        stale_seen = sum(
            1
            for entries in existing.values()
            for entry in entries
            if now - entry[0] > ttl
        )
        if stale_seen:
            get_bus().event(
                "campaign.claim.gc", campaign=name, stale=stale_seen, ttl=ttl
            )
            _gc_stale_claims(store, name, ttl, now)
        # Any live foreign claim — even on a cell outside this wave —
        # means a concurrent invocation is active and later waves must
        # keep scanning.
        rivals = any(
            entry[1] != owner and now - entry[0] <= ttl
            for entries in existing.values()
            for entry in entries
        )
        mine: list[CampaignCell] = []
        deferred: list[CampaignCell] = []
        for cell in wave:
            live = [
                entry for entry in existing.get(cell.digest, [])
                if now - entry[0] <= ttl
            ]
            winner = min(live, default=(now, owner))
            (mine if winner[1] == owner else deferred).append(cell)
        if deferred:
            get_bus().event(
                "campaign.claim.contention", level="warning",
                campaign=name, owner=owner, deferred=len(deferred),
                cells=[cell.digest for cell in deferred],
            )
    except BaseException:
        # The read-back died (store error mid-scan, Ctrl-C) before the
        # caller could take ownership of claim_ids: delete our markers
        # now or an immediate re-run defers to this invocation's corpse
        # for a full claim_ttl.
        _delete_claims(store, claim_ids)
        raise
    return mine, deferred, claim_ids, rivals


def _delete_claims(store: Any, claim_ids: list[str]) -> None:
    """Best-effort removal of this invocation's claim markers."""
    delete = getattr(store, "delete", None)
    if delete is None:
        return
    for pid in claim_ids:
        try:
            delete(pid)
        except Exception:  # noqa: BLE001 - already gone / read-only store
            pass


def _gc_stale_claims(store: Any, name: str, ttl: float, now: float) -> None:
    """Best-effort deletion of expired claim markers.

    Hard-killed shards never clean up after themselves; without GC
    their markers accumulate in a long-lived shared store forever (and
    every claim scan re-parses them).  Only markers already ignored as
    stale are touched, so this can never steal a live rival's claim.
    """
    expire = getattr(store, "expire_markers", None)
    if expire is not None:
        # Server-side TTL expiry (Mongo-like stores): the store sweeps
        # its own stale markers; the scan below then only mops up
        # whatever raced past the sweep.
        try:
            expire(CLAIM_COMMAND, ttl)
        except Exception:  # noqa: BLE001 - GC must never fail a wave
            pass
    if getattr(store, "delete", None) is None:
        return
    try:
        inject("campaign.gc", key=name)
        stale = [
            entry.id
            for entry in store.entries(CLAIM_COMMAND, tags=[f"campaign={name}"])
            if now - entry.created > ttl
        ]
    except Exception:  # noqa: BLE001 - GC must never fail a wave
        return
    _delete_claims(store, stale)


#: Cell digests are the first 16 hex chars of a SHA-256 (see
#: :meth:`CampaignCell.digest`); anything else in a ``cell=`` tag is a
#: corrupt/tampered entry and must not count as a completed cell.
_DIGEST_CHARS = frozenset("0123456789abcdef")


def _is_cell_digest(text: str) -> bool:
    return len(text) == 16 and set(text) <= _DIGEST_CHARS


def _ledger_ids(store: Any, name: str) -> list[tuple[str, str]]:
    """``(digest, store id)`` pairs for every well-formed ledger entry.

    Entries whose ``cell=`` tag is missing, empty or malformed are
    skipped: they can never correspond to a spec cell, so treating them
    as completed would silently drop cells from a resumed sweep.  The
    scan runs on the store's index plane (cell digests live in the
    tags), so ledger bookkeeping — resume checks, shard partitioning —
    never deserialises artifact payloads.
    """
    pairs: list[tuple[str, str]] = []
    for entry in store.entries(tags=[f"campaign={name}"]):
        for tag in entry.tags:
            if tag.startswith("cell="):
                digest = tag[len("cell="):]
                if _is_cell_digest(digest):
                    pairs.append((digest, entry.id))
    return pairs


def completed_cells(store: Any, name: str) -> set[str]:
    """Digests of all cells of campaign ``name`` already in the ledger.

    Index-plane only: a campaign resume (or shard partition) costs one
    tag-filtered index scan, not a full-ledger deserialisation.
    """
    return {digest for digest, _pid in _ledger_ids(store, name)}


def ledger(store: Any, name: str) -> dict[str, Any]:
    """The campaign's ledger: cell digest -> stored artifact profile.

    Resolves digests on the index plane, then batch-loads exactly the
    artifact payloads via ``get_many`` (duplicate digests — racing
    shards' bit-identical artifacts — dedupe to the newest entry, as
    before).
    """
    pairs = _ledger_ids(store, name)
    profiles = store.get_many([pid for _digest, pid in pairs])
    return {digest: profile for (digest, _pid), profile in zip(pairs, profiles)}


def comparable_artifact(profile: Any) -> dict[str, Any]:
    """A ledger artifact document scrubbed of run-environment identity.

    Campaign results are deterministic by construction (cell-derived
    noise streams); only *when* and *by which process* a cell ran leaks
    into its stored document.  Dropping the wall-clock ``created`` stamp
    and the recording process id leaves exactly the fields that must be
    bit-identical across reruns, shards, resumes and chaos runs.
    """
    doc = profile.to_dict() if hasattr(profile, "to_dict") else dict(profile)
    doc = json.loads(json.dumps(doc, sort_keys=True, default=str))
    doc.pop("created", None)
    process = doc.get("info", {}).get("process")
    if isinstance(process, dict):
        process.pop("pid", None)
    return doc


def ledger_digest(store: Any, name: str) -> str:
    """Canonical digest of campaign ``name``'s ledger.

    Two campaign runs converged to the same results — regardless of
    execution order, sharding, worker count, interruptions, retries or
    injected faults — produce the same digest.  The chaos smoke test
    (and CI job) pins a faulted run against a fault-free one with this.
    """
    led = ledger(store, name)
    payload = json.dumps(
        {digest: comparable_artifact(profile)
         for digest, profile in sorted(led.items())},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_campaign(
    spec: CampaignSpec | Mapping[str, Any],
    store: Any,
    processes: int | None = None,
    service: RunService | None = None,
    limit: int | None = None,
    checkpoint: int = DEFAULT_CHECKPOINT,
    shard: Any = None,
    claim: bool | None = None,
    claim_ttl: float = DEFAULT_CLAIM_TTL,
    progress: Any = None,
    stop: Callable[[], bool] | None = None,
) -> CampaignReport:
    """Execute (or resume) a campaign sweep against its store ledger.

    Cells already present in the ledger are skipped; the rest execute
    through the run service in checkpointed waves of ``checkpoint``
    cells — each wave is persisted before the next starts, so an
    interruption loses at most one wave and a re-run completes only the
    missing cells.  ``limit`` caps the cells executed in this
    invocation (handy for smoke tests and incremental sweeps); failures
    are recorded in the report, never stored as completed cells.

    ``shard=(i, n)`` (or ``"i/n"``) restricts this invocation to its
    digest-assigned partition of the pending cells so *n* hosts sharing
    one store divide the sweep; see the module docstring.  ``claim``
    toggles the wave-level cell claiming that serialises overlapping
    invocations (default: on exactly when sharded); ``claim_ttl`` is
    how long a foreign claim defers a cell before it is presumed dead.

    ``progress`` is an optional per-wave callback receiving a summary
    dict (``wave``, ``waves``, ``claimed``, ``executed``, ``failed``,
    ``deferred``, ``completed``, ``pending``, ``elapsed``) after each
    wave is persisted — the CLI's live progress lines.

    ``stop`` is an optional zero-argument drain predicate checked
    between waves (the CLI wires its SIGTERM/SIGINT handler here): once
    it returns true the current wave is finished, persisted and its
    claims released, the remaining waves never start, and the report
    comes back with ``interrupted=True`` — a graceful shutdown loses
    nothing and a re-run resumes from the ledger.

    Ledger store operations (resume scan, artifact and claim-marker
    writes) retry transient failures :data:`STORE_ATTEMPTS` times (with
    deterministic jitter) before failing the campaign.

    Telemetry: the sweep runs under a ``campaign.run`` span with one
    ``campaign.wave`` span per wave (pooled per-request spans stitch
    under it) and emits ``campaign.start`` / ``campaign.wave.finish`` /
    ``campaign.claim.contention`` / ``campaign.claim.gc`` /
    ``campaign.store.retry`` / ``campaign.interrupted`` /
    ``campaign.finish`` events on the process bus.
    """
    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    svc = service if service is not None else get_service()
    shard_id = None if shard is None else parse_shard(shard)
    use_claims = claim if claim is not None else shard_id is not None
    owner = f"{os.getpid():x}-{secrets.token_hex(4)}"
    shard_label = None if shard_id is None else f"{shard_id[0]}/{shard_id[1]}"
    cells = spec.cells()
    done = _store_op(
        "completed_cells", lambda: completed_cells(store, spec.name)
    )
    pending = [cell for cell in cells if cell.digest not in done]
    skipped = len(cells) - len(pending)
    if shard_id is not None:
        pending = shard_cells(pending, shard_id)
    assigned = len(pending)
    truncated = False
    if limit is not None and len(pending) > limit:
        pending = pending[: max(0, limit)]
        truncated = True

    bus = get_bus()
    executed = 0
    deferred = 0
    interrupted = False
    failures: list[dict[str, str]] = []
    start = time.perf_counter()
    step = max(1, checkpoint)
    n_waves = (len(pending) + step - 1) // step
    with span(
        "campaign.run", level="info", campaign=spec.name, total=len(cells),
        skipped=skipped, assigned=assigned, shard=shard_label, owner=owner,
    ) as campaign_span:
        bus.event(
            "campaign.start", campaign=spec.name, total=len(cells),
            skipped=skipped, assigned=assigned, waves=n_waves,
            shard=shard_label, owner=owner,
        )
        # The first claimed wave always scans for rivals; later waves only
        # keep paying the marker read-back while rivals are actually
        # live.  A rival appearing *after* scanning stops goes unseen — the
        # worst case is a duplicate, bit-identical artifact, which resume
        # and analysis dedupe by digest.
        scan_claims = True
        for wave_no, wave_start in enumerate(range(0, len(pending), step), start=1):
            if stop is not None and stop():
                # Drain semantics: the wave that was running when the
                # stop request arrived has already been persisted and
                # its claims released; just never start the next one.
                interrupted = True
                bus.event(
                    "campaign.interrupted", level="warning",
                    campaign=spec.name, wave=wave_no, waves=n_waves,
                    executed=executed,
                    pending=len(cells) - skipped - executed,
                )
                break
            wave = pending[wave_start : wave_start + step]
            wave_executed = wave_failed = wave_deferred = 0
            with span(
                "campaign.wave", level="info", campaign=spec.name,
                wave=wave_no, waves=n_waves, cells=len(wave),
            ) as wave_span:
                claim_ids: list[str] = []
                if use_claims:
                    wave, lost, claim_ids, rivals = _claim_wave(
                        store, spec.name, wave, owner, claim_ttl, scan=scan_claims
                    )
                    scan_claims = rivals
                    deferred += len(lost)
                    wave_deferred = len(lost)
                try:
                    requests, runnable = [], []
                    for cell in wave:
                        try:
                            requests.append(cell.to_request())
                            runnable.append(cell)
                        except Exception as exc:  # unknown app spec, bad config, ...
                            failures.append(
                                {"cell": cell.digest, "app": cell.app,
                                 "machine": cell.machine, "error": repr(exc)}
                            )
                            wave_failed += 1
                    results = svc.run(requests, processes=processes, rethrow=False)
                    artifacts = []
                    for cell, result in zip(runnable, results):
                        if result.ok:
                            artifacts.append(cell.artifact(result.value))
                            executed += 1
                            wave_executed += 1
                        else:
                            failures.append(
                                {"cell": cell.digest, "app": cell.app,
                                 "machine": cell.machine,
                                 "error": result.error or "unknown error"}
                            )
                            wave_failed += 1
                    if artifacts:
                        _store_op(
                            "artifacts.put", lambda: store.put_many(artifacts)
                        )
                finally:
                    # Claims outlive an invocation only when it is killed hard
                    # (no chance to clean up) — exactly the case claim_ttl
                    # staleness exists for.
                    _delete_claims(store, claim_ids)
                wave_span.set(
                    executed=wave_executed, failed=wave_failed,
                    deferred=wave_deferred,
                )
            summary = {
                "campaign": spec.name,
                "wave": wave_no,
                "waves": n_waves,
                "total": len(cells),
                "claimed": len(wave),
                "executed": wave_executed,
                "failed": wave_failed,
                "deferred": wave_deferred,
                "completed": skipped + executed,
                "pending": len(cells) - skipped - executed,
                "elapsed": time.perf_counter() - start,
            }
            bus.event("campaign.wave.finish", **summary)
            if progress is not None:
                progress(dict(summary))
        campaign_span.set(executed=executed, failed=len(failures),
                          deferred=deferred, interrupted=interrupted)
        bus.event(
            "campaign.finish", campaign=spec.name, executed=executed,
            failed=len(failures), deferred=deferred, interrupted=interrupted,
            seconds=time.perf_counter() - start,
        )

    return CampaignReport(
        name=spec.name,
        total=len(cells),
        skipped=skipped,
        executed=executed,
        failed=failures,
        seconds=time.perf_counter() - start,
        truncated=truncated,
        shard=None if shard_id is None else f"{shard_id[0]}/{shard_id[1]}",
        assigned=assigned,
        deferred=deferred,
        interrupted=interrupted,
    )
