"""Declarative campaigns: sweeps with a resumable on-store ledger.

A *campaign* is a declarative description of an experiment sweep — the
cross product of application specs, machine models, noise seeds and
repeats — executed through the :class:`~repro.runtime.service.RunService`
and recorded in a :class:`~repro.storage.base.ProfileStore`.

Every cell of the sweep has a deterministic identity (a digest over the
cell's parameters *and* the spec settings that influence its result);
the stored artifact carries that identity in its tags
(``campaign=<name>``, ``cell=<digest>``).  The store therefore *is* the
campaign ledger: re-running a campaign queries it first and only
executes the missing cells, so an interrupted sweep resumes where it
stopped and a completed sweep is a no-op.  Because each cell's noise
derives from its own ``(seed, repeat)`` identity — never from execution
order — a resumed campaign's ledger is identical to an uninterrupted
run's.

Spec form (dict or JSON file)::

    {
      "name": "sweep1",
      "kind": "profile",                      // or "run" (raw engine)
      "apps": ["gromacs:iterations=50000", "sleeper:sleep_seconds=2"],
      "machines": ["thinkie", "comet"],
      "seeds": [0, 1],                        // default [0]
      "repeats": 2,                           // default 1
      "noisy": true,                          // default true
      "config": {"sample_rate": 2.0},         // SynapseConfig kwargs
      "tags": {"experiment": "demo"}          // extra tags on every cell
    }
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.errors import ConfigError
from repro.runtime.service import RunRequest, RunService, get_service
from repro.util.tables import Table

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignSpec",
    "completed_cells",
    "ledger",
    "run_campaign",
]

_KINDS = ("profile", "run")
_SPEC_KEYS = frozenset(
    {"name", "kind", "apps", "machines", "seeds", "repeats", "noisy", "config", "tags"}
)

#: Cells stored per checkpoint wave: an interrupted sweep keeps every
#: finished wave in the ledger and resumes from the next one.
DEFAULT_CHECKPOINT = 8


def _str_list(value: Any, what: str) -> tuple[str, ...]:
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise ConfigError(f"campaign {what} must be a list of strings")
    items = tuple(str(item) for item in value)
    if not items:
        raise ConfigError(f"campaign {what} must not be empty")
    return items


@dataclass(frozen=True)
class CampaignSpec:
    """Validated campaign description (see module docstring for the form)."""

    name: str
    apps: tuple[str, ...]
    machines: tuple[str, ...]
    kind: str = "profile"
    seeds: tuple[int, ...] = (0,)
    repeats: int = 1
    noisy: bool = True
    config: dict[str, Any] = field(default_factory=dict)
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in "=,\n"):
            raise ConfigError(
                f"campaign name {self.name!r} must be non-empty and free of '=', ','"
            )
        if self.kind not in _KINDS:
            raise ConfigError(f"campaign kind must be one of {_KINDS}, not {self.kind!r}")
        if self.repeats < 1:
            raise ConfigError("campaign repeats must be >= 1")
        if not self.seeds:
            raise ConfigError("campaign seeds must not be empty")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise ConfigError(f"unknown campaign spec keys: {sorted(unknown)}")
        if "name" not in data or "apps" not in data or "machines" not in data:
            raise ConfigError("campaign specs need 'name', 'apps' and 'machines'")
        return cls(
            name=str(data["name"]),
            apps=_str_list(data["apps"], "apps"),
            machines=_str_list(data["machines"], "machines"),
            kind=str(data.get("kind", "profile")),
            seeds=tuple(int(seed) for seed in data.get("seeds", (0,))),
            repeats=int(data.get("repeats", 1)),
            noisy=bool(data.get("noisy", True)),
            config=dict(data.get("config", {})),
            tags=dict(data.get("tags", {})),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "CampaignSpec":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read campaign spec {path}: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ConfigError(f"campaign spec {path} must be a JSON object")
        return cls.from_dict(data)

    @property
    def n_cells(self) -> int:
        return len(self.apps) * len(self.machines) * len(self.seeds) * self.repeats

    def cells(self) -> list["CampaignCell"]:
        """Expand the sweep into its cells, in deterministic spec order."""
        cells = []
        for app in self.apps:
            for machine in self.machines:
                for seed in self.seeds:
                    for rep in range(self.repeats):
                        cells.append(CampaignCell(self, app, machine, seed, rep))
        return cells


@dataclass(frozen=True)
class CampaignCell:
    """One (app, machine, seed, repeat) point of a campaign sweep."""

    spec: CampaignSpec
    app: str
    machine: str
    seed: int
    rep: int

    @property
    def digest(self) -> str:
        """Deterministic cell identity.

        Hashes the cell coordinates plus every spec setting that
        influences the cell's stored artifact (kind, noisy, config,
        tags), so editing the spec invalidates — rather than silently
        reuses — old cells.
        """
        payload = json.dumps(
            [
                self.spec.name,
                self.spec.kind,
                self.app,
                self.machine,
                self.seed,
                self.rep,
                bool(self.spec.noisy),
                sorted(self.spec.config.items()),
                sorted((str(k), str(v)) for k, v in self.spec.tags.items()),
            ],
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def cell_tags(self) -> dict[str, Any]:
        return {
            **self.spec.tags,
            "campaign": self.spec.name,
            "cell": self.digest,
            "machine": self.machine,
            "seed": self.seed,
            "rep": self.rep,
        }

    def to_request(self) -> RunRequest:
        """The declarative run request this cell executes as."""
        from repro.apps.registry import parse_app  # noqa: PLC0415 (cycle)

        app = parse_app(self.app)
        if self.spec.kind == "profile":
            return RunRequest(
                kind="profile",
                target=app,
                machine=self.machine,
                config=dict(self.spec.config),
                noisy=self.spec.noisy,
                seed=self.seed,
                index=self.rep + 1,
                tags=self.cell_tags(),
                command=app.command(),
                key=self.digest,
            )
        return RunRequest(
            kind="engine",
            target=app,
            machine=self.machine,
            noisy=self.spec.noisy,
            seed=self.seed,
            index=self.rep + 1,
            reduce=_engine_summary,
            key=self.digest,
            metadata={"command": app.command()},
        )

    def artifact(self, value: Any):
        """The ledger document for this cell's run outcome.

        ``profile`` cells store the profile itself; ``run`` cells store
        a summary profile (statics only) so both kinds live in the same
        store and resume the same way.
        """
        from repro.apps.registry import parse_app  # noqa: PLC0415 (cycle)
        from repro.core.samples import Profile  # noqa: PLC0415 (cycle)
        from repro.sim.machines import get_machine  # noqa: PLC0415 (cycle)

        if self.spec.kind == "profile":
            return value
        statics = dict(value["totals"])
        statics["time.runtime_rusage"] = value["duration"]
        return Profile(
            command=parse_app(self.app).command(),
            tags=self.cell_tags(),
            machine=dict(get_machine(self.machine).info()),
            config=dict(self.spec.config),
            statics=statics,
            info={"campaign_kind": "run", "phase_bounds": value["phase_bounds"]},
        )


def _engine_summary(record: Any) -> dict[str, Any]:
    """Worker-side reducer for ``run`` cells: totals, not histories."""
    return {
        "duration": record.duration,
        "totals": record.totals(),
        "phase_bounds": [list(bounds) for bounds in record.phase_bounds],
    }


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation."""

    name: str
    total: int
    skipped: int
    executed: int
    failed: list[dict[str, str]] = field(default_factory=list)
    seconds: float = 0.0
    truncated: bool = False

    @property
    def remaining(self) -> int:
        """Cells still missing from the ledger after this invocation."""
        return self.total - self.skipped - self.executed

    @property
    def complete(self) -> bool:
        return self.remaining == 0 and not self.failed

    def to_dict(self) -> dict[str, Any]:
        return {
            "campaign": self.name,
            "total": self.total,
            "skipped": self.skipped,
            "executed": self.executed,
            "failed": list(self.failed),
            "remaining": self.remaining,
            "complete": self.complete,
            "seconds": self.seconds,
            "truncated": self.truncated,
        }

    def table(self) -> Table:
        table = Table(
            ["cells", "skipped (ledger)", "executed", "failed", "remaining"],
            title=(
                f"campaign {self.name!r}: "
                f"{'complete' if self.complete else 'partial'} "
                f"in {self.seconds:.2f}s"
            ),
        )
        table.add_row(
            [self.total, self.skipped, self.executed, len(self.failed), self.remaining]
        )
        return table


def completed_cells(store: Any, name: str) -> set[str]:
    """Digests of all cells of campaign ``name`` already in the ledger."""
    done: set[str] = set()
    for profile in store.find(tags=[f"campaign={name}"]):
        for tag in profile.tags:
            if tag.startswith("cell="):
                done.add(tag[len("cell="):])
    return done


def ledger(store: Any, name: str) -> dict[str, Any]:
    """The campaign's ledger: cell digest -> stored artifact profile."""
    entries: dict[str, Any] = {}
    for profile in store.find(tags=[f"campaign={name}"]):
        for tag in profile.tags:
            if tag.startswith("cell="):
                entries[tag[len("cell="):]] = profile
    return entries


def run_campaign(
    spec: CampaignSpec | Mapping[str, Any],
    store: Any,
    processes: int | None = None,
    service: RunService | None = None,
    limit: int | None = None,
    checkpoint: int = DEFAULT_CHECKPOINT,
) -> CampaignReport:
    """Execute (or resume) a campaign sweep against its store ledger.

    Cells already present in the ledger are skipped; the rest execute
    through the run service in checkpointed waves of ``checkpoint``
    cells — each wave is persisted before the next starts, so an
    interruption loses at most one wave and a re-run completes only the
    missing cells.  ``limit`` caps the cells executed in this
    invocation (handy for smoke tests and incremental sweeps); failures
    are recorded in the report, never stored as completed cells.
    """
    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    svc = service if service is not None else get_service()
    cells = spec.cells()
    done = completed_cells(store, spec.name)
    pending = [cell for cell in cells if cell.digest not in done]
    skipped = len(cells) - len(pending)
    truncated = False
    if limit is not None and len(pending) > limit:
        pending = pending[: max(0, limit)]
        truncated = True

    executed = 0
    failures: list[dict[str, str]] = []
    start = time.perf_counter()
    for wave_start in range(0, len(pending), max(1, checkpoint)):
        wave = pending[wave_start : wave_start + max(1, checkpoint)]
        requests, runnable = [], []
        for cell in wave:
            try:
                requests.append(cell.to_request())
                runnable.append(cell)
            except Exception as exc:  # unknown app spec, bad config, ...
                failures.append(
                    {"cell": cell.digest, "app": cell.app, "machine": cell.machine,
                     "error": repr(exc)}
                )
        results = svc.run(requests, processes=processes, rethrow=False)
        artifacts = []
        for cell, result in zip(runnable, results):
            if result.ok:
                artifacts.append(cell.artifact(result.value))
                executed += 1
            else:
                failures.append(
                    {"cell": cell.digest, "app": cell.app, "machine": cell.machine,
                     "error": result.error or "unknown error"}
                )
        if artifacts:
            store.put_many(artifacts)

    return CampaignReport(
        name=spec.name,
        total=len(cells),
        skipped=skipped,
        executed=executed,
        failed=failures,
        seconds=time.perf_counter() - start,
        truncated=truncated,
    )
