"""Unified run service & campaign layer.

Every plane of this reproduction ultimately *executes runs*: the
profiler repeats profiling runs, the emulator replays plans, the sim
backend fans experiment batches across cores, plan validation replays
placements, and the benchmarks sweep workloads over machines and noise
seeds.  Before this package each of those call sites hand-rolled its own
repeat/fan-out/collect loop; :mod:`repro.runtime` turns them into one
subsystem:

* :class:`RunRequest` / :class:`RunResult` — a declarative description
  of one run (profile / emulate / raw engine execution / opaque
  callable) with deterministic per-request noise seeds, and its outcome;
* :class:`RunService` — executes any mix of requests, owning a
  **persistent, reusable worker pool** so repeated batches do not pay
  pool startup per batch; sim-plane requests fan out across processes,
  host-plane requests run in-parent (profiling a real process from a
  pool worker would perturb it);
* :func:`get_service` — the process-wide default service shared by
  ``Profiler.run_repeats``, ``Emulator.run``, ``SimBackend.run_many``,
  ``predict.validate.validate_plan`` and the benchmark harness;
* :mod:`repro.runtime.campaign` — a declarative sweep spec
  (apps x machines x seeds x repeats) expanded to requests and executed
  with a resumable on-:class:`~repro.storage.base.ProfileStore` ledger;
  ``run_campaign(spec, store, shard=(i, n))`` partitions the pending
  cells by digest so several hosts sharing one store split a sweep,
  with claim markers serialising overlapping invocations;
* :mod:`repro.runtime.coordinator` — the elastic alternative to static
  shards: workers register TTL-leased membership, pull pending cells in
  leased batches and steal expired leases from crashed/hung/drained
  rivals, so fleets grow, shrink and fail mid-sweep while the ledger
  still converges (``elastic_worker`` / ``run_elastic``);
* :mod:`repro.runtime.analyze` — aggregates a finished ledger into the
  paper's consistency/error tables (``repro campaign --report``).
"""

from __future__ import annotations

from repro.runtime.analyze import CampaignAnalysis, analyze_campaign
from repro.runtime.campaign import (
    CampaignCell,
    CampaignReport,
    CampaignSpec,
    claims,
    comparable_artifact,
    completed_cells,
    ledger,
    ledger_digest,
    parse_shard,
    run_campaign,
    shard_cells,
    shard_index,
)
from repro.runtime.coordinator import (
    DEFAULT_LEASE_TTL,
    LEASE_COMMAND,
    MEMBER_COMMAND,
    LeaseRecord,
    elastic_worker,
    lease_records,
    live_members,
    resolve_lease,
    run_elastic,
)
from repro.runtime.service import (
    ParallelFallbackWarning,
    PoisonRequestError,
    RunPolicy,
    RunRequest,
    RunResult,
    RunService,
    RunTimeoutError,
    get_service,
    reset_service,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LEASE_COMMAND",
    "MEMBER_COMMAND",
    "CampaignAnalysis",
    "CampaignCell",
    "CampaignReport",
    "CampaignSpec",
    "LeaseRecord",
    "ParallelFallbackWarning",
    "PoisonRequestError",
    "RunPolicy",
    "RunRequest",
    "RunResult",
    "RunService",
    "RunTimeoutError",
    "analyze_campaign",
    "claims",
    "comparable_artifact",
    "completed_cells",
    "elastic_worker",
    "get_service",
    "lease_records",
    "ledger",
    "ledger_digest",
    "live_members",
    "parse_shard",
    "reset_service",
    "resolve_lease",
    "run_campaign",
    "run_elastic",
    "shard_cells",
    "shard_index",
]
