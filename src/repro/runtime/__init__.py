"""Unified run service & campaign layer.

Every plane of this reproduction ultimately *executes runs*: the
profiler repeats profiling runs, the emulator replays plans, the sim
backend fans experiment batches across cores, plan validation replays
placements, and the benchmarks sweep workloads over machines and noise
seeds.  Before this package each of those call sites hand-rolled its own
repeat/fan-out/collect loop; :mod:`repro.runtime` turns them into one
subsystem:

* :class:`RunRequest` / :class:`RunResult` — a declarative description
  of one run (profile / emulate / raw engine execution / opaque
  callable) with deterministic per-request noise seeds, and its outcome;
* :class:`RunService` — executes any mix of requests, owning a
  **persistent, reusable worker pool** so repeated batches do not pay
  pool startup per batch; sim-plane requests fan out across processes,
  host-plane requests run in-parent (profiling a real process from a
  pool worker would perturb it);
* :func:`get_service` — the process-wide default service shared by
  ``Profiler.run_repeats``, ``Emulator.run``, ``SimBackend.run_many``,
  ``predict.validate.validate_plan`` and the benchmark harness;
* :mod:`repro.runtime.campaign` — a declarative sweep spec
  (apps x machines x seeds x repeats) expanded to requests and executed
  with a resumable on-:class:`~repro.storage.base.ProfileStore` ledger.
"""

from __future__ import annotations

from repro.runtime.campaign import (
    CampaignCell,
    CampaignReport,
    CampaignSpec,
    completed_cells,
    ledger,
    run_campaign,
)
from repro.runtime.service import (
    ParallelFallbackWarning,
    RunRequest,
    RunResult,
    RunService,
    get_service,
    reset_service,
)

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignSpec",
    "ParallelFallbackWarning",
    "RunRequest",
    "RunResult",
    "RunService",
    "completed_cells",
    "get_service",
    "ledger",
    "reset_service",
    "run_campaign",
]
