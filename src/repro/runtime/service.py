"""The run service: one execution runtime behind every plane.

A :class:`RunRequest` describes one run declaratively; the
:class:`RunService` executes batches of them.  Sim-plane requests (a
machine model, no live backend object) are picklable and fan out over
the service's **persistent** process pool — the pool survives across
batches, so repeated ``run_many`` / campaign waves pay worker startup
once per service instead of once per batch (the PR 2 follow-up).
Host-plane requests and requests carrying live backend objects or
opaque runners execute serially in the parent process.

Determinism: each request carries ``(seed, index)`` (or an explicit
``noise_seed``) from which its noise stream derives, so results are
bit-identical regardless of worker count, chunking or execution order.

When the pool cannot be created or dies (constrained hosts, forbidden
fork, unpicklable payloads) the service degrades to the serial path
with a :class:`~repro.core.multiproc.ParallelFallbackWarning` — it
never fails a batch because of pool infrastructure.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from repro.core.multiproc import ParallelFallbackWarning, _serial_map, get_shared
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import activate_context, pack_context, span

__all__ = [
    "ParallelFallbackWarning",
    "RunPolicy",
    "RunRequest",
    "RunResult",
    "RunService",
    "RunTimeoutError",
    "get_service",
    "reset_service",
]

#: Request kinds the service knows how to execute (see
#: :mod:`repro.runtime.execute` for their semantics).
KINDS = ("engine", "profile", "emulate", "call")


class RunTimeoutError(Exception):
    """An attempt exceeded its :class:`RunPolicy` timeout budget.

    Raised (and captured into the :class:`RunResult`) *after* the
    attempt returns: the service cannot preempt arbitrary Python code
    in-process, but a policy timeout guarantees an over-budget cell is
    classified as failed — and retried or surfaced — instead of being
    silently accepted, so a slow cell fails a campaign shard gracefully
    rather than poisoning its wave.
    """


@dataclass(frozen=True)
class RunPolicy:
    """Per-request retry/timeout policy.

    Attributes
    ----------
    retries:
        Re-attempts after the first failure (0 = single attempt).
    timeout:
        Per-attempt wall-clock budget in seconds; an attempt that takes
        longer counts as failed with :class:`RunTimeoutError` (checked
        post-attempt, see there).  ``None`` disables the budget.
    backoff:
        Base sleep between attempts: attempt *k* (1-based) is followed
        by ``backoff * k`` seconds before the next attempt (linear
        backoff; 0 retries immediately).
    """

    retries: int = 0
    timeout: float | None = None
    backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("RunPolicy retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("RunPolicy timeout must be positive (or None)")
        if self.backoff < 0:
            raise ValueError("RunPolicy backoff must be >= 0")

    @property
    def attempts(self) -> int:
        """Total attempts this policy allows."""
        return self.retries + 1

    @classmethod
    def from_dict(cls, data: Any) -> "RunPolicy":
        """Build a policy from a spec mapping (campaign JSON specs)."""
        if isinstance(data, RunPolicy):
            return data
        if not isinstance(data, dict):
            raise ValueError(
                f"run policy must be a mapping, not {type(data).__name__}"
            )
        unknown = set(data) - {"retries", "timeout", "backoff"}
        if unknown:
            raise ValueError(f"unknown run policy keys: {sorted(unknown)}")
        timeout = data.get("timeout")
        try:
            return cls(
                retries=int(data.get("retries", 0)),
                timeout=float(timeout) if timeout is not None else None,
                backoff=float(data.get("backoff", 0.0)),
            )
        except TypeError as exc:  # non-numeric values -> one error type
            raise ValueError(f"invalid run policy values: {exc}") from exc


@dataclass(frozen=True)
class RunRequest:
    """Declarative description of one run.

    Attributes
    ----------
    kind:
        ``"engine"`` — raw engine execution of a workload/app model,
        yielding an :class:`~repro.sim.engine.ExecutionRecord`;
        ``"profile"`` — a full profiling run yielding a
        :class:`~repro.core.samples.Profile`;
        ``"emulate"`` — replay of a profile/plan yielding an
        :class:`~repro.core.emulator.EmulationResult`;
        ``"call"`` — an opaque in-parent callable (``runner``), the
        escape hatch for custom backends and profiler subclasses.
    target:
        What to run: a workload / application model (engine, profile),
        a profile or emulation plan (emulate), or a shell command /
        callable (host-plane profile).
    machine:
        Simulated machine (name or :class:`~repro.sim.resource.MachineSpec`)
        the run executes on; ``None`` selects the host plane, which
        always executes in-parent.
    config:
        :class:`~repro.core.config.SynapseConfig` or a kwargs mapping
        for one (profile / emulate kinds).
    noisy / seed / index / noise_seed:
        The deterministic noise identity of this run.  Sim-plane noise
        derives from ``seed_from(machine, workload, seed, index)`` —
        exactly the per-spawn-slot stream ``SimBackend.spawn`` draws —
        unless ``noise_seed`` overrides the derivation outright.
    tags / command:
        Profile metadata (profile kind).
    reduce:
        Optional picklable ``outcome -> value`` callable applied
        *inside* the worker, so fan-outs that only need summaries never
        ship full histories across the pool.
    runner:
        In-parent thunk for ``kind="call"``.
    backend:
        A live :class:`~repro.core.backend.ExecutionBackend` to run on;
        forces in-parent execution (live backends are stateful and not
        meaningfully picklable).
    key:
        Caller-assigned identity (campaign cell digest, machine name).
    policy:
        Optional :class:`RunPolicy` — per-request retries, per-attempt
        timeout budget and backoff.  Applied where the request executes
        (inside the worker for pooled requests), so retries never
        re-ship payloads.  Determinism is preserved: each attempt draws
        the same request-derived noise stream, so a retried success is
        bit-identical to a first-attempt one.
    metadata:
        Free-form extras; not interpreted by the service.
    """

    kind: str
    target: Any = None
    machine: Any = None
    config: Any = None
    noisy: bool = True
    seed: int = 0
    index: int = 1
    noise_seed: int | None = None
    tags: Any = None
    command: str | None = None
    reduce: Callable[[Any], Any] | None = None
    runner: Callable[[], Any] | None = None
    backend: Any = None
    key: str | None = None
    policy: RunPolicy | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown run kind {self.kind!r}; expected one of {KINDS}")
        if self.kind == "call" and self.runner is None:
            raise ValueError("kind='call' requests need a runner")

    @property
    def poolable(self) -> bool:
        """Whether this request may execute in a pool worker.

        Only declarative sim-plane requests qualify: they are rebuilt
        from plain data inside the worker.  Live backends, opaque
        runners and host-plane runs stay in the parent.
        """
        return (
            self.kind in ("engine", "profile", "emulate")
            and self.machine is not None
            and self.backend is None
            and self.runner is None
        )


@dataclass
class RunResult:
    """Outcome of one executed :class:`RunRequest`."""

    request: RunRequest
    ok: bool
    value: Any = None
    #: Failure description when ``ok`` is False: the request context
    #: followed by the exception, e.g. ``"profile request key=<digest>
    #: (attempt 2/2, 0.173s in attempt): ValueError(...)"``.
    error: str | None = None
    #: Wall-clock execution time of this request (seconds, as measured
    #: where it ran — inside the worker for pooled requests).
    seconds: float = 0.0

    @property
    def key(self) -> str | None:
        return self.request.key


#: Chunks submitted per worker: >1 so the pool's dynamic dispatch
#: rebalances heterogeneous batches (one chunk per worker would serialise
#: a batch whose expensive items are contiguous, e.g. a campaign wave
#: ordered app-outermost), while each chunk still amortises its pickle
#: of the shared payload over many items.
CHUNKS_PER_WORKER = 4


def _split_chunks(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Contiguous near-equal chunks (order-preserving, no empty chunks)."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list[Any]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def _run_chunk(payload: bytes) -> tuple[list[tuple[bool, Any]], list[Any]]:
    """Worker-side chunk executor.

    ``payload`` is the parent-pickled ``(fn, shared, chunk, telemetry)``
    tuple: pickling in the parent (instead of the executor's queue-feeder
    thread) turns an unpicklable ``fn``/payload into a synchronous
    error the serial fallback handles — feeder-thread pickling failures
    deadlock ProcessPoolExecutor shutdown on some CPython versions.
    The shared payload installs once per chunk, not per item, and
    ``fn``'s own exceptions are separated from pool infrastructure
    failures exactly like :func:`repro.core.multiproc.parallel_map`'s
    contract requires.

    ``telemetry`` is the parent's packed span context (or ``None`` when
    the parent's bus is dark): the chunk runs under it, every event the
    worker emits is captured, and the buffered events return alongside
    the outcomes so the parent can replay them into its sinks — that is
    how spans opened inside pool workers stitch under the span that
    submitted the batch.
    """
    import pickle  # noqa: PLC0415 - worker side

    from repro.core.multiproc import _install_shared  # noqa: PLC0415 (cycle)

    fn, shared, chunk, telemetry = pickle.loads(payload)
    previous = get_shared()
    if shared is not None:
        _install_shared(shared)
    try:
        with activate_context(telemetry) as events:
            outcomes: list[tuple[bool, Any]] = []
            for item in chunk:
                try:
                    outcomes.append((True, fn(item)))
                except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
                    outcomes.append((False, exc))
            return outcomes, list(events) if events is not None else []
    finally:
        if shared is not None:
            _install_shared(previous)


def _attempt_request(
    request: RunRequest, target: Any, machine: Any
) -> tuple[bool, float, Any, int, float]:
    """Execute one request under its policy.

    Returns ``(ok, seconds, value_or_exception, attempt, attempt_seconds)``
    where ``attempt`` is the 1-based attempt that produced the outcome,
    ``seconds`` covers all attempts including backoff sleeps and
    ``attempt_seconds`` is the wall-clock time spent *inside* the
    deciding attempt (what failure messages report as time-in-attempt).
    Failed attempts retry up to ``policy.retries`` times; an attempt
    exceeding ``policy.timeout`` counts as failed with
    :class:`RunTimeoutError`.

    Emits one ``run.request`` span per request (kind, key, deciding
    attempt, retry/timeout outcome) — in the pool worker for pooled
    requests, whence it stitches under the submitting batch's span.
    """
    from repro.runtime.execute import dispatch  # noqa: PLC0415 (cycle)

    policy = request.policy if request.policy is not None else RunPolicy()
    with span("run.request", kind=request.kind, key=request.key) as sp:
        start = time.perf_counter()
        outcome: Any = None
        attempt_elapsed = 0.0
        for attempt in range(1, policy.attempts + 1):
            attempt_start = time.perf_counter()
            try:
                value = dispatch(request, target, machine)
                attempt_elapsed = time.perf_counter() - attempt_start
                if policy.timeout is not None and attempt_elapsed > policy.timeout:
                    raise RunTimeoutError(
                        f"attempt took {attempt_elapsed:.3f}s, over the "
                        f"{policy.timeout:g}s policy timeout"
                    )
                sp.set(ok=True, attempt=attempt, attempts=policy.attempts)
                return True, time.perf_counter() - start, value, attempt, \
                    attempt_elapsed
            except Exception as exc:  # noqa: BLE001 - surfaced as RunResult / re-raised
                attempt_elapsed = time.perf_counter() - attempt_start
                outcome = exc
                if attempt < policy.attempts:
                    get_bus().event(
                        "run.retry", level="debug", kind=request.kind,
                        key=request.key, attempt=attempt,
                        attempt_seconds=attempt_elapsed, error=repr(exc),
                    )
                    if policy.backoff > 0:
                        time.sleep(policy.backoff * attempt)
        sp.set(
            ok=False, attempt=policy.attempts, attempts=policy.attempts,
            timeout=isinstance(outcome, RunTimeoutError), error=repr(outcome),
        )
        return False, time.perf_counter() - start, outcome, policy.attempts, \
            attempt_elapsed


def _failure_context(
    request: RunRequest, attempt: int, attempt_seconds: float | None = None
) -> str:
    """Human-readable request identity for failure messages.

    Surfaces what a bare traceback loses once a request has crossed the
    pool: the request kind, the caller-assigned key (a campaign's cell
    digest), which attempt of the policy budget failed, and how long
    that attempt ran before failing (so a stuck cell is distinguishable
    from an instant crash in the campaign's failure report).
    """
    policy = request.policy if request.policy is not None else RunPolicy()
    key = f" key={request.key}" if request.key is not None else ""
    elapsed = (
        f", {attempt_seconds:.3f}s in attempt" if attempt_seconds is not None else ""
    )
    return (
        f"{request.kind} request{key} "
        f"(attempt {attempt}/{policy.attempts}{elapsed})"
    )


def _failure_message(
    request: RunRequest, exc: BaseException, attempt: int,
    attempt_seconds: float | None = None,
) -> str:
    return f"{_failure_context(request, attempt, attempt_seconds)}: {exc!r}"


def _rethrow(
    request: RunRequest, exc: BaseException, attempt: int,
    attempt_seconds: float | None = None,
) -> None:
    """Re-raise a request's exception, annotated with its context.

    The original exception type is preserved (callers match on it); the
    request context travels as an exception note where the runtime
    supports them (3.11+).
    """
    if hasattr(exc, "add_note"):
        exc.add_note(
            f"while executing {_failure_context(request, attempt, attempt_seconds)}"
        )
    raise exc


def _execute_packed(
    item: tuple[RunRequest, int, int]
) -> tuple[bool, float, Any, int, float]:
    """Execute one packed request against the shared target/machine tables."""
    request, target_slot, machine_slot = item
    targets, machines = get_shared()
    return _attempt_request(request, targets[target_slot], machines[machine_slot])


class RunService:
    """Executes batches of :class:`RunRequest` on a persistent pool.

    Parameters
    ----------
    processes:
        Default worker-count ceiling for batches that do not pass their
        own ``processes`` (``None`` = all cores).  Worker counts are
        always additionally clamped to the batch size; a resolved count
        of 1 runs serially in-parent with zero pool overhead.

    The pool starts lazily on the first parallel batch and is reused by
    every later one — ``stats["pool_starts"]`` stays at 1 across
    arbitrarily many batches unless a batch needs *more* workers (the
    pool is restarted larger) or the pool breaks (serial fallback, then
    a fresh pool on the next batch).  Call :meth:`close` (or use the
    service as a context manager) to release the workers.
    """

    def __init__(self, processes: int | None = None) -> None:
        self._processes = processes
        self._pool: Any = None
        self._pool_workers = 0
        self.stats: dict[str, int] = {
            "batches": 0,
            "requests": 0,
            "pool_starts": 0,
            "fallbacks": 0,
        }

    # -- pool management ----------------------------------------------------

    @property
    def pool_workers(self) -> int:
        """Worker count of the live pool (0 when no pool is running)."""
        return self._pool_workers if self._pool is not None else 0

    def resolve_workers(self, processes: int | None, n_items: int) -> int:
        """Effective worker count for a batch of ``n_items``."""
        if n_items <= 0:
            return 0
        limit = processes if processes is not None else self._processes
        if limit is None:
            limit = os.cpu_count() or 1
        return max(1, min(limit, n_items))

    def _ensure_pool(self, workers: int) -> Any:
        if self._pool is not None and self._pool_workers < workers:
            self._shutdown_pool()
        if self._pool is None:
            import concurrent.futures  # noqa: PLC0415 - keep off the serial path

            self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
            self._pool_workers = workers
            self.stats["pool_starts"] += 1
        return self._pool

    def _shutdown_pool(self) -> None:
        # wait=True: leaving the executor's management thread behind
        # deadlocks concurrent.futures' atexit join at interpreter
        # shutdown; the workers are idle between batches, so waiting is
        # cheap.
        pool, self._pool, self._pool_workers = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def close(self) -> None:
        """Shut the worker pool down (idempotent); the service stays usable
        and will lazily start a fresh pool on the next parallel batch."""
        self._shutdown_pool()

    def __enter__(self) -> "RunService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- low-level map ------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        processes: int | None = None,
        shared: Any = None,
    ) -> list[Any]:
        """Order-preserving map over the persistent pool.

        The persistent-pool counterpart of
        :func:`repro.core.multiproc.parallel_map`: same semantics
        (``shared`` ships once per worker chunk, ``fn`` exceptions
        re-raise in the parent, infrastructure failures degrade to a
        serial re-run with a warning) but without paying pool startup
        per call.
        """
        items = list(items)
        workers = self.resolve_workers(processes, len(items))
        if workers <= 1:
            return _serial_map(fn, items, shared)
        bus = get_bus()
        try:
            import pickle  # noqa: PLC0415 - parallel path only

            # The packed span context rides inside each chunk payload:
            # worker-side spans adopt the currently open span (e.g. a
            # campaign wave) as their parent and their events return
            # with the chunk results for replay below.
            telemetry = pack_context()
            # Pickle each chunk payload here, not in the executor's
            # feeder thread: unpicklable payloads then fail fast into
            # the serial fallback instead of wedging the pool.
            payloads = [
                pickle.dumps((fn, shared, chunk, telemetry))
                for chunk in _split_chunks(items, workers * CHUNKS_PER_WORKER)
            ]
            pool = self._ensure_pool(workers)
            futures = [pool.submit(_run_chunk, payload) for payload in payloads]
            outcomes = []
            for future in futures:
                chunk_outcomes, events = future.result()
                if events:
                    bus.replay(events)
                outcomes.extend(chunk_outcomes)
        except Exception as exc:  # noqa: BLE001 - infra boundary, see below
            # Pool infrastructure failed (fn exceptions are captured
            # inside _run_chunk and never land here).  Degrade to the
            # serial path rather than failing the batch.
            self._shutdown_pool()
            self.stats["fallbacks"] += 1
            warnings.warn(
                f"run service pool unavailable ({exc!r}); running "
                f"{len(items)} items serially",
                ParallelFallbackWarning,
                stacklevel=2,
            )
            return _serial_map(fn, items, shared)
        results: list[Any] = []
        for ok, value in outcomes:
            if not ok:
                raise value
            results.append(value)
        return results

    # -- request execution ---------------------------------------------------

    def run(
        self,
        requests: Iterable[RunRequest],
        processes: int | None = None,
        rethrow: bool = True,
    ) -> list[RunResult]:
        """Execute a batch of requests; returns results in request order.

        Poolable requests fan out over the worker pool (respecting
        ``processes``); the rest run serially in the parent, in request
        order.  With ``rethrow`` (default) the first failing request
        re-raises its exception; ``rethrow=False`` captures failures as
        ``ok=False`` results instead — campaign ledgers use this to
        record partial sweeps.
        """
        requests = list(requests)
        self.stats["batches"] += 1
        self.stats["requests"] += len(requests)
        results: list[RunResult | None] = [None] * len(requests)
        registry = get_registry()
        batch_start = time.perf_counter()

        with span(
            "service.run", requests=len(requests),
            pooled=sum(1 for request in requests if request.poolable),
        ) as sp:
            pooled = [i for i, request in enumerate(requests) if request.poolable]
            workers = self.resolve_workers(processes, len(pooled))
            if pooled:
                targets, machines, items = _pack(requests, pooled)
                outcomes = self.map(
                    _execute_packed, items, processes=processes,
                    shared=(targets, machines),
                )
                for i, (ok, seconds, value, attempt, in_attempt) in zip(
                    pooled, outcomes
                ):
                    if not ok and rethrow:
                        _rethrow(requests[i], value, attempt, in_attempt)
                    results[i] = RunResult(
                        request=requests[i],
                        ok=ok,
                        value=value if ok else None,
                        error=None if ok else _failure_message(
                            requests[i], value, attempt, in_attempt
                        ),
                        seconds=seconds,
                    )
            for i, request in enumerate(requests):
                if results[i] is None:
                    results[i] = self._execute_local(request, rethrow)
            sp.set(workers=workers)

        # Telemetry-derived service metrics (always on; the benchmark
        # harness folds these into its committed results): per-request
        # latency and — for pooled batches — pool utilization, i.e. the
        # fraction of worker*wall capacity spent inside requests.
        busy = 0.0
        for result in results:
            registry.observe("service.request.seconds", result.seconds)
            registry.inc(
                "service.requests.ok" if result.ok else "service.requests.failed"
            )
            busy += result.seconds
        if pooled and workers > 1:
            wall = time.perf_counter() - batch_start
            if wall > 0:
                utilization = min(1.0, busy / (wall * workers))
                registry.observe("service.pool.utilization", utilization)
                registry.set_gauge("service.pool.utilization", utilization)
        return results  # type: ignore[return-value]

    @staticmethod
    def _execute_local(request: RunRequest, rethrow: bool) -> RunResult:
        ok, seconds, value, attempt, in_attempt = _attempt_request(
            request, request.target, request.machine
        )
        if ok:
            return RunResult(request=request, ok=True, value=value, seconds=seconds)
        if rethrow:
            _rethrow(request, value, attempt, in_attempt)
        return RunResult(
            request=request, ok=False,
            error=_failure_message(request, value, attempt, in_attempt),
            seconds=seconds,
        )


def _pack(
    requests: Sequence[RunRequest], indices: Sequence[int]
) -> tuple[list[Any], list[Any], list[tuple[RunRequest, int, int]]]:
    """Strip bulky objects out of poolable requests.

    Distinct targets and machines ship once per batch (in the shared
    payload) no matter how many requests reference them — fanning one
    workload over many seeds costs one pickle, as the pre-service
    ``spawn_many`` path did.
    """
    targets: list[Any] = []
    target_slots: dict[int, int] = {}
    machines: list[Any] = []
    machine_slots: dict[int, int] = {}
    items: list[tuple[RunRequest, int, int]] = []
    for i in indices:
        request = requests[i]
        target_slot = target_slots.get(id(request.target))
        if target_slot is None:
            target_slot = len(targets)
            target_slots[id(request.target)] = target_slot
            targets.append(request.target)
        machine_slot = machine_slots.get(id(request.machine))
        if machine_slot is None:
            machine_slot = len(machines)
            machine_slots[id(request.machine)] = machine_slot
            machines.append(request.machine)
        lite = replace(request, target=None, machine=None)
        items.append((lite, target_slot, machine_slot))
    return targets, machines, items


_default_service: RunService | None = None


def get_service() -> RunService:
    """The process-wide default :class:`RunService` (created lazily).

    Shared by every refactored entry point — ``Profiler.run_repeats``,
    ``Emulator.run``, ``SimBackend.run_many``, ``validate_plan``, the
    campaign runner and the benchmark harness — so they all amortise
    one pool.  The pool is released at interpreter exit.
    """
    global _default_service
    if _default_service is None:
        import atexit  # noqa: PLC0415 - one-time setup

        _default_service = RunService()
        atexit.register(_default_service.close)
    return _default_service


def reset_service() -> None:
    """Close and drop the default service (tests, forked children)."""
    global _default_service
    if _default_service is not None:
        _default_service.close()
        _default_service = None
