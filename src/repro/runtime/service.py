"""The run service: one execution runtime behind every plane.

A :class:`RunRequest` describes one run declaratively; the
:class:`RunService` executes batches of them.  Sim-plane requests (a
machine model, no live backend object) are picklable and fan out over
the service's **persistent** process pool — the pool survives across
batches, so repeated ``run_many`` / campaign waves pay worker startup
once per service instead of once per batch (the PR 2 follow-up).
Host-plane requests and requests carrying live backend objects or
opaque runners execute serially in the parent process.

Determinism: each request carries ``(seed, index)`` (or an explicit
``noise_seed``) from which its noise stream derives, so results are
bit-identical regardless of worker count, chunking or execution order.

Supervision: pooled batches run under a parent-side supervisor that
*enforces* per-attempt :class:`RunPolicy` timeout budgets (a hung
worker is killed, its request failed with :class:`RunTimeoutError`,
instead of stalling the batch forever), detects worker death
(``BrokenProcessPool``), restarts the pool and requeues the in-flight
requests exactly once per crash — and quarantines a *poison* request
that keeps killing the pool with a
:class:`~repro.core.errors.PoisonRequestError` after
:data:`RunService.POISON_CRASH_LIMIT` crashes.  Every recovery action
emits ``supervisor.*`` telemetry events and metrics.

When the pool cannot be created at all (constrained hosts, forbidden
fork, unpicklable payloads) the service degrades to the serial path
with a :class:`~repro.core.multiproc.ParallelFallbackWarning` — it
never fails a batch because of pool infrastructure.
"""

from __future__ import annotations

import contextlib
import os
import random
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import PoisonRequestError, is_retryable
from repro.core.multiproc import ParallelFallbackWarning, _serial_map, get_shared
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import activate_context, pack_context, span

__all__ = [
    "ParallelFallbackWarning",
    "PoisonRequestError",
    "RunPolicy",
    "RunRequest",
    "RunResult",
    "RunService",
    "RunTimeoutError",
    "batch_budget",
    "get_service",
    "reset_service",
]

#: Request kinds the service knows how to execute (see
#: :mod:`repro.runtime.execute` for their semantics).
KINDS = ("engine", "profile", "emulate", "call")


class RunTimeoutError(Exception):
    """An attempt exceeded its :class:`RunPolicy` timeout budget.

    Two enforcement tiers:

    * **Pooled requests** get their deadline *enforced*: the service's
      supervisor kills the worker once the request's whole policy
      budget (attempts x timeout + backoff) is exhausted, so even a
      request that hangs forever fails in bounded wall-clock.
    * **In-parent requests** (host plane, live backends, opaque
      runners) cannot be preempted; there the timeout is classified
      *after* the attempt returns, guaranteeing an over-budget cell is
      recorded as failed — and retried or surfaced — instead of being
      silently accepted.
    """


@dataclass(frozen=True)
class RunPolicy:
    """Per-request retry/timeout policy.

    Attributes
    ----------
    retries:
        Re-attempts after the first failure (0 = single attempt).
        Retries apply only to *retryable* failures (see
        :func:`repro.core.errors.is_retryable`): a configuration-shaped
        error fails identically every attempt, so the loop stops at the
        first one instead of burning the budget.
    timeout:
        Per-attempt wall-clock budget in seconds; an attempt that takes
        longer counts as failed with :class:`RunTimeoutError` — enforced
        by the supervisor for pooled requests (the worker is killed once
        the whole policy budget is spent), checked post-attempt for
        in-parent ones.  ``None`` disables the budget.
    backoff:
        Base sleep between attempts: attempt *k* (1-based) allows up to
        ``backoff * k`` seconds before the next attempt.
    jitter:
        With jitter (the default) the actual sleep is drawn uniformly
        from ``[0, backoff * k)`` — *full jitter*, so many shards
        retrying the same contended resource desynchronise instead of
        thundering-herding in lockstep.  The draw is seeded from the
        request's own identity (key, seed, index, attempt), never from
        global RNG state, so determinism goldens stay pinned.
        ``jitter=False`` restores the fixed linear schedule.
    """

    retries: int = 0
    timeout: float | None = None
    backoff: float = 0.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("RunPolicy retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("RunPolicy timeout must be positive (or None)")
        if self.backoff < 0:
            raise ValueError("RunPolicy backoff must be >= 0")

    @property
    def attempts(self) -> int:
        """Total attempts this policy allows."""
        return self.retries + 1

    @property
    def budget(self) -> float | None:
        """Upper wall-clock bound of the whole retry loop (``None`` =
        unbounded): every attempt at its timeout plus every backoff
        sleep at its maximum.  The supervisor enforces this bound on
        pooled requests."""
        if self.timeout is None:
            return None
        sleeps = self.backoff * (self.retries * (self.retries + 1) / 2.0)
        return self.attempts * self.timeout + sleeps

    @classmethod
    def from_dict(cls, data: Any) -> "RunPolicy":
        """Build a policy from a spec mapping (campaign JSON specs)."""
        if isinstance(data, RunPolicy):
            return data
        if not isinstance(data, dict):
            raise ValueError(
                f"run policy must be a mapping, not {type(data).__name__}"
            )
        unknown = set(data) - {"retries", "timeout", "backoff", "jitter"}
        if unknown:
            raise ValueError(f"unknown run policy keys: {sorted(unknown)}")
        timeout = data.get("timeout")
        try:
            return cls(
                retries=int(data.get("retries", 0)),
                timeout=float(timeout) if timeout is not None else None,
                backoff=float(data.get("backoff", 0.0)),
                jitter=bool(data.get("jitter", True)),
            )
        except TypeError as exc:  # non-numeric values -> one error type
            raise ValueError(f"invalid run policy values: {exc}") from exc


@dataclass(frozen=True)
class RunRequest:
    """Declarative description of one run.

    Attributes
    ----------
    kind:
        ``"engine"`` — raw engine execution of a workload/app model,
        yielding an :class:`~repro.sim.engine.ExecutionRecord`;
        ``"profile"`` — a full profiling run yielding a
        :class:`~repro.core.samples.Profile`;
        ``"emulate"`` — replay of a profile/plan yielding an
        :class:`~repro.core.emulator.EmulationResult`;
        ``"call"`` — an opaque in-parent callable (``runner``), the
        escape hatch for custom backends and profiler subclasses.
    target:
        What to run: a workload / application model (engine, profile),
        a profile or emulation plan (emulate), or a shell command /
        callable (host-plane profile).
    machine:
        Simulated machine (name or :class:`~repro.sim.resource.MachineSpec`)
        the run executes on; ``None`` selects the host plane, which
        always executes in-parent.
    config:
        :class:`~repro.core.config.SynapseConfig` or a kwargs mapping
        for one (profile / emulate kinds).
    noisy / seed / index / noise_seed:
        The deterministic noise identity of this run.  Sim-plane noise
        derives from ``seed_from(machine, workload, seed, index)`` —
        exactly the per-spawn-slot stream ``SimBackend.spawn`` draws —
        unless ``noise_seed`` overrides the derivation outright.
    tags / command:
        Profile metadata (profile kind).
    reduce:
        Optional picklable ``outcome -> value`` callable applied
        *inside* the worker, so fan-outs that only need summaries never
        ship full histories across the pool.
    runner:
        In-parent thunk for ``kind="call"``.
    backend:
        A live :class:`~repro.core.backend.ExecutionBackend` to run on;
        forces in-parent execution (live backends are stateful and not
        meaningfully picklable).
    key:
        Caller-assigned identity (campaign cell digest, machine name).
    policy:
        Optional :class:`RunPolicy` — per-request retries, per-attempt
        timeout budget and backoff.  Applied where the request executes
        (inside the worker for pooled requests), so retries never
        re-ship payloads.  Determinism is preserved: each attempt draws
        the same request-derived noise stream, so a retried success is
        bit-identical to a first-attempt one.
    metadata:
        Free-form extras; not interpreted by the service.
    """

    kind: str
    target: Any = None
    machine: Any = None
    config: Any = None
    noisy: bool = True
    seed: int = 0
    index: int = 1
    noise_seed: int | None = None
    tags: Any = None
    command: str | None = None
    reduce: Callable[[Any], Any] | None = None
    runner: Callable[[], Any] | None = None
    backend: Any = None
    key: str | None = None
    policy: RunPolicy | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown run kind {self.kind!r}; expected one of {KINDS}")
        if self.kind == "call" and self.runner is None:
            raise ValueError("kind='call' requests need a runner")

    @property
    def poolable(self) -> bool:
        """Whether this request may execute in a pool worker.

        Only declarative sim-plane requests qualify: they are rebuilt
        from plain data inside the worker.  Live backends, opaque
        runners and host-plane runs stay in the parent.
        """
        return (
            self.kind in ("engine", "profile", "emulate")
            and self.machine is not None
            and self.backend is None
            and self.runner is None
        )


@dataclass
class RunResult:
    """Outcome of one executed :class:`RunRequest`."""

    request: RunRequest
    ok: bool
    value: Any = None
    #: Failure description when ``ok`` is False: the request context
    #: followed by the exception, e.g. ``"profile request key=<digest>
    #: (attempt 2/2, 0.173s in attempt): ValueError(...)"``.
    error: str | None = None
    #: Wall-clock execution time of this request (seconds, as measured
    #: where it ran — inside the worker for pooled requests).
    seconds: float = 0.0

    @property
    def key(self) -> str | None:
        return self.request.key


#: Chunks submitted per worker: >1 so the pool's dynamic dispatch
#: rebalances heterogeneous batches (one chunk per worker would serialise
#: a batch whose expensive items are contiguous, e.g. a campaign wave
#: ordered app-outermost), while each chunk still amortises its pickle
#: of the shared payload over many items.
CHUNKS_PER_WORKER = 4


def _split_chunks(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Contiguous near-equal chunks (order-preserving, no empty chunks)."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list[Any]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def _worker_init() -> None:
    """Pool-worker initializer: restore default signal dispositions.

    Forked workers inherit whatever handlers the parent installed — the
    CLI's graceful-drain SIGTERM handler in particular, which would make
    workers *ignore* the executor's ``terminate()`` during broken-pool
    cleanup (and print the drain banner from the wrong process).
    """
    import signal  # noqa: PLC0415 - worker-side only

    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        # Workers must not race the parent for Ctrl-C: the parent drains
        # and shuts the pool down; an interrupted worker would break it.
        signal.signal(signal.SIGINT, signal.SIG_IGN)


def _run_chunk(payload: bytes) -> tuple[list[tuple[bool, Any]], list[Any]]:
    """Worker-side chunk executor.

    ``payload`` is the parent-pickled ``(fn, shared, chunk, telemetry)``
    tuple: pickling in the parent (instead of the executor's queue-feeder
    thread) turns an unpicklable ``fn``/payload into a synchronous
    error the serial fallback handles — feeder-thread pickling failures
    deadlock ProcessPoolExecutor shutdown on some CPython versions.
    The shared payload installs once per chunk, not per item, and
    ``fn``'s own exceptions are separated from pool infrastructure
    failures exactly like :func:`repro.core.multiproc.parallel_map`'s
    contract requires.

    ``telemetry`` is the parent's packed span context (or ``None`` when
    the parent's bus is dark): the chunk runs under it, every event the
    worker emits is captured, and the buffered events return alongside
    the outcomes so the parent can replay them into its sinks — that is
    how spans opened inside pool workers stitch under the span that
    submitted the batch.
    """
    import pickle  # noqa: PLC0415 - worker side

    from repro.core.multiproc import _install_shared  # noqa: PLC0415 (cycle)

    fn, shared, chunk, telemetry = pickle.loads(payload)
    previous = get_shared()
    if shared is not None:
        _install_shared(shared)
    try:
        with activate_context(telemetry) as events:
            outcomes: list[tuple[bool, Any]] = []
            for item in chunk:
                try:
                    outcomes.append((True, fn(item)))
                except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
                    outcomes.append((False, exc))
            return outcomes, list(events) if events is not None else []
    finally:
        if shared is not None:
            _install_shared(previous)


def _attempt_request(
    request: RunRequest, target: Any, machine: Any
) -> tuple[bool, float, Any, int, float]:
    """Execute one request under its policy.

    Returns ``(ok, seconds, value_or_exception, attempt, attempt_seconds)``
    where ``attempt`` is the 1-based attempt that produced the outcome,
    ``seconds`` covers all attempts including backoff sleeps and
    ``attempt_seconds`` is the wall-clock time spent *inside* the
    deciding attempt (what failure messages report as time-in-attempt).
    Failed attempts retry up to ``policy.retries`` times — but only for
    *retryable* failures (:func:`~repro.core.errors.is_retryable`);
    a fatal error (bad config, malformed workload, quarantined request)
    stops the loop on the attempt that raised it.  An attempt exceeding
    ``policy.timeout`` counts as failed with :class:`RunTimeoutError`.

    Emits one ``run.request`` span per request (kind, key, deciding
    attempt, retry/timeout outcome) — in the pool worker for pooled
    requests, whence it stitches under the submitting batch's span.
    """
    from repro.runtime.execute import dispatch  # noqa: PLC0415 (cycle)

    policy = request.policy if request.policy is not None else RunPolicy()
    with span("run.request", kind=request.kind, key=request.key) as sp:
        start = time.perf_counter()
        outcome: Any = None
        attempt_elapsed = 0.0
        deciding = policy.attempts
        for attempt in range(1, policy.attempts + 1):
            attempt_start = time.perf_counter()
            try:
                value = dispatch(request, target, machine)
                attempt_elapsed = time.perf_counter() - attempt_start
                if policy.timeout is not None and attempt_elapsed > policy.timeout:
                    raise RunTimeoutError(
                        f"attempt took {attempt_elapsed:.3f}s, over the "
                        f"{policy.timeout:g}s policy timeout"
                    )
                sp.set(ok=True, attempt=attempt, attempts=policy.attempts)
                return True, time.perf_counter() - start, value, attempt, \
                    attempt_elapsed
            except Exception as exc:  # noqa: BLE001 - surfaced as RunResult / re-raised
                attempt_elapsed = time.perf_counter() - attempt_start
                outcome = exc
                deciding = attempt
                if not is_retryable(exc):
                    break  # fatal: identical failure every attempt
                if attempt < policy.attempts:
                    sleep = _backoff_sleep(policy, request, attempt)
                    get_bus().event(
                        "run.retry", level="debug", kind=request.kind,
                        key=request.key, attempt=attempt,
                        attempt_seconds=attempt_elapsed, error=repr(exc),
                        sleep=sleep,
                    )
                    if sleep > 0:
                        time.sleep(sleep)
        sp.set(
            ok=False, attempt=deciding, attempts=policy.attempts,
            timeout=isinstance(outcome, RunTimeoutError), error=repr(outcome),
            retryable=is_retryable(outcome) if outcome is not None else None,
        )
        return False, time.perf_counter() - start, outcome, deciding, \
            attempt_elapsed


def _backoff_sleep(policy: RunPolicy, request: RunRequest, attempt: int) -> float:
    """The sleep before the attempt after ``attempt`` (full jitter).

    With ``policy.jitter`` the sleep is uniform in ``[0, backoff*k)``,
    drawn from an RNG seeded by the request's own identity — no global
    RNG state is read or advanced, so campaign results stay
    bit-reproducible and pool workers never correlate their draws.
    """
    ceiling = policy.backoff * attempt
    if ceiling <= 0:
        return 0.0
    if not policy.jitter:
        return ceiling
    rng = random.Random(
        f"{request.key}|{request.seed}|{request.index}|{attempt}"
    )
    return ceiling * rng.random()


def _failure_context(
    request: RunRequest, attempt: int, attempt_seconds: float | None = None
) -> str:
    """Human-readable request identity for failure messages.

    Surfaces what a bare traceback loses once a request has crossed the
    pool: the request kind, the caller-assigned key (a campaign's cell
    digest), which attempt of the policy budget failed, and how long
    that attempt ran before failing (so a stuck cell is distinguishable
    from an instant crash in the campaign's failure report).
    """
    policy = request.policy if request.policy is not None else RunPolicy()
    key = f" key={request.key}" if request.key is not None else ""
    elapsed = (
        f", {attempt_seconds:.3f}s in attempt" if attempt_seconds is not None else ""
    )
    return (
        f"{request.kind} request{key} "
        f"(attempt {attempt}/{policy.attempts}{elapsed})"
    )


def _failure_message(
    request: RunRequest, exc: BaseException, attempt: int,
    attempt_seconds: float | None = None,
) -> str:
    return f"{_failure_context(request, attempt, attempt_seconds)}: {exc!r}"


def _rethrow(
    request: RunRequest, exc: BaseException, attempt: int,
    attempt_seconds: float | None = None,
) -> None:
    """Re-raise a request's exception, annotated with its context.

    The original exception type is preserved (callers match on it); the
    request context travels as an exception note where the runtime
    supports them (3.11+).
    """
    if hasattr(exc, "add_note"):
        exc.add_note(
            f"while executing {_failure_context(request, attempt, attempt_seconds)}"
        )
    raise exc


def _execute_packed(
    item: tuple[RunRequest, int, int]
) -> tuple[bool, float, Any, int, float]:
    """Execute one packed request against the shared target/machine tables."""
    request, target_slot, machine_slot = item
    targets, machines = get_shared()
    return _attempt_request(request, targets[target_slot], machines[machine_slot])


#: Slack (seconds) past an item's policy budget before the supervisor
#: kills its worker: covers pool dispatch, payload pickling and the
#: supervisor's own poll granularity.
DEADLINE_GRACE = 0.25

#: Supervisor poll interval while pooled futures are outstanding (the
#: deadline-check cadence; completions wake the supervisor immediately).
_POLL_INTERVAL = 0.05


class _SupervisedRun:
    """One supervised pooled batch: the engine behind :meth:`RunService.map`.

    Resolves every item to an outcome ``(status, value, seconds)``:

    ``ok``
        ``fn`` returned ``value`` (``seconds`` unused — pooled request
        timings travel inside the value).
    ``error``
        ``fn`` raised ``value``; the worker survived.
    ``killed``
        The item outlived its budget; the supervisor killed the pool
        and failed it with a :class:`RunTimeoutError` after ``seconds``.
    ``poison``
        The item's chunk killed the pool
        :data:`RunService.POISON_CRASH_LIMIT` times; failed with a
        :class:`~repro.core.errors.PoisonRequestError`.

    Dispatch is parent-side windowed: at most ``workers`` chunks are
    submitted at any moment, so a submitted chunk is *executing*, which
    makes deadline clocks honest (an item queued behind a hog never
    burns its budget waiting) and crash blame precise (only chunks that
    were actually on a worker when the pool broke are suspected).

    Invariants: each item resolves exactly once; a pool crash requeues
    each unresolved in-flight item exactly once (crash-suspected items
    re-run one at a time — probe rounds — so a repeat crash attributes
    to exactly one request before quarantine).
    """

    def __init__(
        self,
        service: "RunService",
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        workers: int,
        shared: Any,
        budgets: Sequence[float | None] | None = None,
        keys: Sequence[str | None] | None = None,
    ) -> None:
        n = len(items)
        self.service = service
        self.fn = fn
        self.items = items
        self.workers = workers
        self.shared = shared
        self.budgets = list(budgets) if budgets is not None else [None] * n
        self.keys = list(keys) if keys is not None else [None] * n
        self.outcomes: list[tuple[str, Any, float] | None] = [None] * n
        self.remaining = set(range(n))
        self.crashes = [0] * n
        self.bus = get_bus()
        self.registry = get_registry()
        self.telemetry = pack_context()

    def execute(self) -> list[tuple[str, Any, float]]:
        while self.remaining:
            suspected = [
                i for i in sorted(self.remaining) if self.crashes[i] > 0
            ]
            # Probe crash suspects one at a time: with a single chunk in
            # flight, a repeat crash attributes to exactly one request —
            # an innocent bystander of a poison request's chunk clears
            # itself with one clean probe and is never quarantined.
            batch = suspected[:1] if suspected else sorted(self.remaining)
            if not self._round(batch):
                break  # serial fallback resolved everything left
        return self.outcomes  # type: ignore[return-value]

    # -- one submission round -----------------------------------------------

    def _round(self, pending: Sequence[int]) -> bool:
        """Submit ``pending`` and watch it to quiescence.

        Returns False when the pool proved unusable and the serial
        fallback resolved everything remaining; True otherwise (the
        round either resolved its items or left requeued ones in
        ``remaining`` for the next round).
        """
        import pickle  # noqa: PLC0415 - parallel path only

        # Budget-bearing and crash-suspected items ride in singleton
        # chunks so deadlines and crash blame attach to one request;
        # everything else keeps the chunked fast path.
        singles = [
            i for i in pending
            if self.budgets[i] is not None or self.crashes[i] > 0
        ]
        bulk = [
            i for i in pending
            if self.budgets[i] is None and self.crashes[i] == 0
        ]
        chunks: list[list[int]] = [[i] for i in singles]
        if bulk:
            chunks.extend(
                _split_chunks(bulk, self.workers * CHUNKS_PER_WORKER)
            )
        try:
            payloads = [
                pickle.dumps((
                    self.fn, self.shared,
                    [self.items[i] for i in chunk], self.telemetry,
                ))
                for chunk in chunks
            ]
            self.service._ensure_pool(self.workers)
        except Exception as exc:  # noqa: BLE001 - infra boundary
            return self._fallback(exc)
        return self._watch(list(zip(chunks, payloads)))

    def _watch(self, work: list[tuple[list[int], bytes]]) -> bool:
        import concurrent.futures as cf  # noqa: PLC0415

        queue = list(reversed(work))  # pop() from the front of `work`
        futures: dict[Any, list[int]] = {}
        started: dict[Any, float] = {}
        while queue or futures:
            try:
                while queue and len(futures) < self.workers:
                    chunk, payload = queue.pop()
                    future = self.service._ensure_pool(self.workers).submit(
                        _run_chunk, payload
                    )
                    futures[future] = chunk
                    started[future] = time.monotonic()
            except cf.BrokenExecutor:
                self._handle_crash(list(futures.values()))
                return True
            except Exception as exc:  # noqa: BLE001 - infra boundary
                return self._fallback(exc)
            done, _ = cf.wait(
                set(futures), timeout=_POLL_INTERVAL,
                return_when=cf.FIRST_COMPLETED,
            )
            now = time.monotonic()
            crashed: list[list[int]] = []
            for future in done:
                chunk = futures.pop(future)
                started.pop(future, None)
                try:
                    chunk_outcomes, events = future.result()
                except cf.BrokenExecutor:
                    crashed.append(chunk)
                except Exception as exc:  # noqa: BLE001 - infra boundary
                    return self._fallback(exc)
                else:
                    if events:
                        self.bus.replay(events)
                    for i, (ok, value) in zip(chunk, chunk_outcomes):
                        self.outcomes[i] = (
                            "ok" if ok else "error", value, 0.0,
                        )
                        self.remaining.discard(i)
            if crashed:
                self._handle_crash(crashed + list(futures.values()))
                return True  # fresh pool next round
            victims = [
                future for future in futures
                if len(futures[future]) == 1
                and self.budgets[futures[future][0]] is not None
                and now - started[future]
                > self.budgets[futures[future][0]] + DEADLINE_GRACE
            ]
            if victims:
                self._enforce_deadlines(victims, futures, started, now)
                return True
        return True

    # -- recovery actions ----------------------------------------------------

    def _handle_crash(self, in_flight: list[list[int]]) -> None:
        """A worker died and broke the pool: blame, quarantine, requeue.

        ``in_flight`` are the chunks that were on a worker when the pool
        broke — under windowed dispatch, exactly the executing ones.
        Each of their unresolved items gets one crash strike; an item
        reaching :data:`RunService.POISON_CRASH_LIMIT` strikes is
        quarantined with :class:`PoisonRequestError`, the rest stay in
        ``remaining`` and requeue exactly once into the next round.
        """
        service = self.service
        service._shutdown_pool()  # broken: discard, restart lazily
        service.stats["pool_crashes"] += 1
        self.registry.inc("supervisor.pool.crashes")
        suspects = sorted(
            {i for chunk in in_flight for i in chunk} & self.remaining
        )
        self.bus.event(
            "supervisor.pool.crash", level="warning",
            suspects=[self.keys[i] if self.keys[i] is not None else i
                      for i in suspects],
            chunks_in_flight=len(in_flight),
        )
        for i in suspects:
            self.crashes[i] += 1
            if self.crashes[i] >= service.POISON_CRASH_LIMIT:
                key = self.keys[i]
                label = f"key={key}" if key is not None else f"#{i}"
                exc = PoisonRequestError(
                    f"request {label} killed the worker pool "
                    f"{self.crashes[i]} times (limit "
                    f"{service.POISON_CRASH_LIMIT}) and was quarantined",
                    key=key, crashes=self.crashes[i],
                )
                self.outcomes[i] = ("poison", exc, 0.0)
                self.remaining.discard(i)
                service.stats["quarantined"] += 1
                self.registry.inc("supervisor.quarantined")
                self.bus.event(
                    "supervisor.quarantine", level="error",
                    key=key, crashes=self.crashes[i],
                )
        survivors = sorted(
            {i for chunk in in_flight for i in chunk} & self.remaining
        )
        if survivors:
            service.stats["requeued"] += len(survivors)
            self.registry.inc("supervisor.requeued", len(survivors))
            self.bus.event(
                "supervisor.requeue", level="info", count=len(survivors),
            )

    def _enforce_deadlines(
        self,
        victims: list[Any],
        futures: dict[Any, list[int]],
        started: dict[Any, float],
        now: float,
    ) -> None:
        """Kill the pool to stop over-budget items; fail them, requeue rest.

        ProcessPoolExecutor cannot cancel a running call, so enforcement
        is pool-wide: the victims fail with :class:`RunTimeoutError`,
        every *other* in-flight item stays in ``remaining`` and requeues
        (blame-free — the kill cause is known) on the fresh pool.
        """
        service = self.service
        victim_items = set()
        for future in victims:
            i = futures[future][0]
            victim_items.add(i)
            elapsed = now - started[future]
            budget = self.budgets[i]
            exc = RunTimeoutError(
                f"request ran {elapsed:.3f}s, past its {budget:g}s policy "
                f"budget (+{DEADLINE_GRACE:g}s grace); worker killed by "
                f"the supervisor"
            )
            self.outcomes[i] = ("killed", exc, elapsed)
            self.remaining.discard(i)
            service.stats["deadline_kills"] += 1
            self.registry.inc("supervisor.deadline.kills")
            self.bus.event(
                "supervisor.deadline.kill", level="warning",
                key=self.keys[i], budget=budget, elapsed=elapsed,
            )
        service._kill_pool()
        survivors = sorted(
            {i for chunk in futures.values() for i in chunk}
            & self.remaining
        )
        if survivors:
            service.stats["requeued"] += len(survivors)
            self.registry.inc("supervisor.requeued", len(survivors))
            self.bus.event(
                "supervisor.requeue", level="info", count=len(survivors),
            )

    def _fallback(self, exc: BaseException) -> bool:
        """Pool infrastructure is unusable: degrade to the serial path."""
        service = self.service
        service._shutdown_pool()
        service.stats["fallbacks"] += 1
        pending = sorted(self.remaining)
        warnings.warn(
            f"run service pool unavailable ({exc!r}); running "
            f"{len(pending)} items serially",
            ParallelFallbackWarning,
            stacklevel=2,
        )
        values = _serial_map(
            self.fn, [self.items[i] for i in pending], self.shared
        )
        for i, value in zip(pending, values):
            self.outcomes[i] = ("ok", value, 0.0)
            self.remaining.discard(i)
        return False


class RunService:
    """Executes batches of :class:`RunRequest` on a persistent pool.

    Parameters
    ----------
    processes:
        Default worker-count ceiling for batches that do not pass their
        own ``processes`` (``None`` = all cores).  Worker counts are
        always additionally clamped to the batch size; a resolved count
        of 1 runs serially in-parent with zero pool overhead.

    The pool starts lazily on the first parallel batch and is reused by
    every later one — ``stats["pool_starts"]`` stays at 1 across
    arbitrarily many batches unless a batch needs *more* workers (the
    pool is restarted larger), a supervisor recovery restarts it (worker
    crash, deadline kill) or the pool breaks irrecoverably (serial
    fallback, then a fresh pool on the next batch).  Call :meth:`close`
    (or use the service as a context manager) to release the workers.
    """

    #: Pool crashes a single request may cause before the supervisor
    #: quarantines it with :class:`PoisonRequestError` instead of
    #: requeueing it again.
    POISON_CRASH_LIMIT = 3

    def __init__(self, processes: int | None = None) -> None:
        self._processes = processes
        self._pool: Any = None
        self._pool_workers = 0
        self.stats: dict[str, int] = {
            "batches": 0,
            "requests": 0,
            "pool_starts": 0,
            "fallbacks": 0,
            "pool_crashes": 0,
            "deadline_kills": 0,
            "requeued": 0,
            "quarantined": 0,
        }

    # -- pool management ----------------------------------------------------

    @property
    def pool_workers(self) -> int:
        """Worker count of the live pool (0 when no pool is running)."""
        return self._pool_workers if self._pool is not None else 0

    def resolve_workers(self, processes: int | None, n_items: int) -> int:
        """Effective worker count for a batch of ``n_items``."""
        if n_items <= 0:
            return 0
        limit = processes if processes is not None else self._processes
        if limit is None:
            limit = os.cpu_count() or 1
        return max(1, min(limit, n_items))

    def _ensure_pool(self, workers: int) -> Any:
        if self._pool is not None and self._pool_workers < workers:
            self._shutdown_pool()
        if self._pool is None:
            import concurrent.futures  # noqa: PLC0415 - keep off the serial path

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init
            )
            self._pool_workers = workers
            self.stats["pool_starts"] += 1
        return self._pool

    def _shutdown_pool(self) -> None:
        # wait=True: leaving the executor's management thread behind
        # deadlocks concurrent.futures' atexit join at interpreter
        # shutdown; the workers are idle between batches, so waiting is
        # cheap.
        pool, self._pool, self._pool_workers = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _kill_pool(self) -> None:
        """Forcibly terminate every pool worker (deadline enforcement).

        ``shutdown()`` alone would *join* a hung worker and block
        forever; killing the worker processes first makes the executor
        notice the breakage and release everything.  The next batch (or
        supervision round) lazily starts a fresh pool.
        """
        pool, self._pool, self._pool_workers = self._pool, None, 0
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except OSError:  # already gone
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken-pool teardown is best effort
            pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent); the service stays usable
        and will lazily start a fresh pool on the next parallel batch."""
        self._shutdown_pool()

    def __enter__(self) -> "RunService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- low-level map ------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        processes: int | None = None,
        shared: Any = None,
        budgets: Sequence[float | None] | None = None,
        keys: Sequence[str | None] | None = None,
    ) -> list[Any]:
        """Order-preserving supervised map over the persistent pool.

        The persistent-pool counterpart of
        :func:`repro.core.multiproc.parallel_map`: same semantics
        (``shared`` ships once per worker chunk, ``fn`` exceptions
        re-raise in the parent, infrastructure failures degrade to a
        serial re-run with a warning) but without paying pool startup
        per call — and supervised: a worker crash restarts the pool and
        requeues the unfinished items exactly once per crash (an item
        that keeps killing the pool raises
        :class:`~repro.core.errors.PoisonRequestError` after
        :data:`POISON_CRASH_LIMIT` crashes), and an item with a
        ``budgets`` entry is killed and raises :class:`RunTimeoutError`
        once over budget.  ``keys`` label items in supervisor telemetry.
        """
        items = list(items)
        workers = self.resolve_workers(processes, len(items))
        if workers <= 1:
            return _serial_map(fn, items, shared)
        outcomes = self._supervised(fn, items, workers, shared, budgets, keys)
        results: list[Any] = []
        for status, value, _seconds in outcomes:
            if status != "ok":
                raise value
            results.append(value)
        return results

    def _supervised(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        workers: int,
        shared: Any = None,
        budgets: Sequence[float | None] | None = None,
        keys: Sequence[str | None] | None = None,
    ) -> list[tuple[str, Any, float]]:
        """Supervised pooled execution; see :class:`_SupervisedRun`."""
        return _SupervisedRun(
            self, fn, items, workers, shared, budgets, keys
        ).execute()

    # -- request execution ---------------------------------------------------

    def run(
        self,
        requests: Iterable[RunRequest],
        processes: int | None = None,
        rethrow: bool = True,
    ) -> list[RunResult]:
        """Execute a batch of requests; returns results in request order.

        Poolable requests fan out over the worker pool (respecting
        ``processes``); the rest run serially in the parent, in request
        order.  With ``rethrow`` (default) the first failing request
        re-raises its exception; ``rethrow=False`` captures failures as
        ``ok=False`` results instead — campaign ledgers use this to
        record partial sweeps.
        """
        requests = list(requests)
        self.stats["batches"] += 1
        self.stats["requests"] += len(requests)
        results: list[RunResult | None] = [None] * len(requests)
        registry = get_registry()
        batch_start = time.perf_counter()

        with span(
            "service.run", requests=len(requests),
            pooled=sum(1 for request in requests if request.poolable),
        ) as sp:
            pooled = [i for i, request in enumerate(requests) if request.poolable]
            workers = self.resolve_workers(processes, len(pooled))
            if pooled:
                targets, machines, items = _pack(requests, pooled)
                shared = (targets, machines)
                if workers <= 1:
                    supervised = [
                        ("ok", value, 0.0)
                        for value in _serial_map(_execute_packed, items, shared)
                    ]
                else:
                    supervised = self._supervised(
                        _execute_packed, items, workers, shared,
                        budgets=[
                            requests[i].policy.budget
                            if requests[i].policy is not None else None
                            for i in pooled
                        ],
                        keys=[requests[i].key for i in pooled],
                    )
                for i, (status, payload, sup_seconds) in zip(pooled, supervised):
                    request = requests[i]
                    if status == "ok":
                        ok, seconds, value, attempt, in_attempt = payload
                    else:
                        # "error" (fn raised), "killed" (deadline) and
                        # "poison" (quarantine) all resolve to a failed
                        # result charged to the whole policy budget.
                        policy = (
                            request.policy if request.policy is not None
                            else RunPolicy()
                        )
                        ok, seconds, value = False, sup_seconds, payload
                        attempt, in_attempt = policy.attempts, None
                    if not ok and rethrow:
                        _rethrow(request, value, attempt, in_attempt)
                    results[i] = RunResult(
                        request=request,
                        ok=ok,
                        value=value if ok else None,
                        error=None if ok else _failure_message(
                            request, value, attempt, in_attempt
                        ),
                        seconds=seconds,
                    )
            for i, request in enumerate(requests):
                if results[i] is None:
                    results[i] = self._execute_local(request, rethrow)
            sp.set(workers=workers)

        # Telemetry-derived service metrics (always on; the benchmark
        # harness folds these into its committed results): per-request
        # latency and — for pooled batches — pool utilization, i.e. the
        # fraction of worker*wall capacity spent inside requests.
        busy = 0.0
        for result in results:
            registry.observe("service.request.seconds", result.seconds)
            registry.inc(
                "service.requests.ok" if result.ok else "service.requests.failed"
            )
            busy += result.seconds
        if pooled and workers > 1:
            wall = time.perf_counter() - batch_start
            if wall > 0:
                utilization = min(1.0, busy / (wall * workers))
                registry.observe("service.pool.utilization", utilization)
                registry.set_gauge("service.pool.utilization", utilization)
        return results  # type: ignore[return-value]

    @staticmethod
    def _execute_local(request: RunRequest, rethrow: bool) -> RunResult:
        ok, seconds, value, attempt, in_attempt = _attempt_request(
            request, request.target, request.machine
        )
        if ok:
            return RunResult(request=request, ok=True, value=value, seconds=seconds)
        if rethrow:
            _rethrow(request, value, attempt, in_attempt)
        return RunResult(
            request=request, ok=False,
            error=_failure_message(request, value, attempt, in_attempt),
            seconds=seconds,
        )


def _pack(
    requests: Sequence[RunRequest], indices: Sequence[int]
) -> tuple[list[Any], list[Any], list[tuple[RunRequest, int, int]]]:
    """Strip bulky objects out of poolable requests.

    Distinct targets and machines ship once per batch (in the shared
    payload) no matter how many requests reference them — fanning one
    workload over many seeds costs one pickle, as the pre-service
    ``spawn_many`` path did.
    """
    targets: list[Any] = []
    target_slots: dict[int, int] = {}
    machines: list[Any] = []
    machine_slots: dict[int, int] = {}
    items: list[tuple[RunRequest, int, int]] = []
    for i in indices:
        request = requests[i]
        target_slot = target_slots.get(id(request.target))
        if target_slot is None:
            target_slot = len(targets)
            target_slots[id(request.target)] = target_slot
            targets.append(request.target)
        machine_slot = machine_slots.get(id(request.machine))
        if machine_slot is None:
            machine_slot = len(machines)
            machine_slots[id(request.machine)] = machine_slot
            machines.append(request.machine)
        lite = replace(request, target=None, machine=None)
        items.append((lite, target_slot, machine_slot))
    return targets, machines, items


def batch_budget(requests: Sequence[RunRequest]) -> float | None:
    """Upper wall-clock bound for executing a batch of requests.

    The worst case is fully serial execution (the pool may degrade to
    the in-parent path), so the bound is the *sum* of every request's
    :attr:`RunPolicy.budget`.  ``None`` — unbounded — as soon as any
    request lacks a timeout, because that request alone can hang the
    batch forever.

    This is the elastic coordinator's deadline plumbing: a worker's
    lease-renewal thread stops renewing a wave's leases once the wave
    has provably overrun this bound, so a worker hung past every
    enforcement tier loses its leases and survivors steal the cells.
    """
    total = 0.0
    for request in requests:
        budget = request.policy.budget if request.policy is not None else None
        if budget is None:
            return None
        total += budget
    return total


_default_service: RunService | None = None


def get_service() -> RunService:
    """The process-wide default :class:`RunService` (created lazily).

    Shared by every refactored entry point — ``Profiler.run_repeats``,
    ``Emulator.run``, ``SimBackend.run_many``, ``validate_plan``, the
    campaign runner and the benchmark harness — so they all amortise
    one pool.  The pool is released at interpreter exit.
    """
    global _default_service
    if _default_service is None:
        import atexit  # noqa: PLC0415 - one-time setup

        _default_service = RunService()
        atexit.register(_default_service.close)
    return _default_service


def reset_service() -> None:
    """Close and drop the default service (tests, forked children)."""
    global _default_service
    if _default_service is not None:
        _default_service.close()
        _default_service = None
