"""The ``synapse`` command-line interface.

The paper ships "a set of command line tools which are wrappers around
certain configurations and combinations of the profile and emulate
methods" (§4).  Subcommands:

* ``synapse profile <command> [--tags k=v ...]`` — profile a shell
  command on the host plane (or an app model on a simulated machine);
* ``synapse emulate <command> [--tags ...]``     — replay a stored profile;
* ``synapse list``                               — stored profile keys;
* ``synapse show <command>``                     — totals + derived metrics;
* ``synapse stats <command>``                    — multi-profile statistics;
* ``synapse machines``                           — simulated machine models;
* ``synapse metrics``                            — Table 1 metric inventory;
* ``synapse predict <command> --machines ...``   — analytical runtime
  prediction of a stored profile on machines it never ran on;
* ``synapse place <app> --machines ...``         — workload-placement
  planning across heterogeneous machine sets (``repro.predict``);
* ``synapse campaign <spec.json>``               — run/resume a
  declarative sweep through the unified run service
  (``repro.runtime``), with a resumable on-store ledger;
  ``--shard i/n`` executes one host's digest-assigned partition of the
  pending cells (n hosts sharing one store split the sweep), and
  ``--report`` aggregates a finished (or partial) ledger into the
  paper-style consistency/error tables (``--format table|json|csv``).
  SIGTERM/SIGINT drain gracefully: the in-flight wave finishes and is
  checkpointed, claims are released, and the run resumes later.

Every subcommand also accepts ``--faults PLAN`` (JSON file or inline
JSON), activating the deterministic fault-injection plane
(:mod:`repro.faults`) for the invocation — the CLI face of the
``REPRO_FAULTS`` environment variable.

The console script installs as ``repro`` (see ``setup.py``), so the
paper-facing spellings are ``repro predict``, ``repro place`` and
``repro campaign``.  Registry listings (``machines``, ``kernels``,
``apps``) print in sorted name order regardless of registration order,
so campaign specs and tests built from them are stable.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.api import emulate as api_emulate
from repro.core.api import profile as api_profile
from repro.core.api import stats as api_stats
from repro.core.config import SynapseConfig
from repro.core.errors import ProfileNotFoundError
from repro.core.metrics import table1_rows
from repro.core.samples import Profile
from repro.sim.machines import get_machine, list_machines
from repro.storage import open_store
from repro.telemetry import configure as configure_telemetry
from repro.telemetry import get_bus
from repro.telemetry.events import LEVELS
from repro.util.tables import Table
from repro.util.units import format_bytes, format_duration, format_frequency

__all__ = ["main", "build_parser"]

_DEFAULT_STORE = "file://.synapse/profiles"


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared ``--log-level/--log-json/--trace/--faults`` flags.

    ``default=SUPPRESS`` keeps a subparser from clobbering a value the
    main parser already set, so the flags work both before and after the
    subcommand (``repro --trace t.json campaign ...`` and ``repro
    campaign ... --trace t.json``).  An unset flag leaves the attribute
    off the namespace entirely (``set_defaults`` would mutate the shared
    parent actions' defaults and reintroduce the clobbering);
    :func:`main` reads the flags with ``getattr`` fallbacks.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("telemetry")
    group.add_argument(
        "--log-level",
        choices=sorted(LEVELS, key=LEVELS.get),
        default=argparse.SUPPRESS,
        help="emit runtime telemetry as log lines on stderr at this level",
    )
    group.add_argument(
        "--log-json",
        action="store_true",
        default=argparse.SUPPRESS,
        help="log telemetry as JSON lines (implies --log-level info)",
    )
    group.add_argument(
        "--trace",
        default=argparse.SUPPRESS,
        metavar="FILE",
        help="write a Chrome-trace JSON of the run's spans to FILE",
    )
    group.add_argument(
        "--faults",
        default=argparse.SUPPRESS,
        metavar="PLAN",
        help="activate a fault-injection plan (JSON file path or inline "
             "JSON) for this invocation; equivalent to REPRO_FAULTS",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    from repro import __version__  # noqa: PLC0415 (cycle)

    telemetry = _telemetry_parent()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synthetic application profiler and emulator (IPPS'16 reproduction)",
        epilog=(
            "prediction & placement: 'repro predict <command> --machines m1 m2' "
            "predicts a stored profile's runtime on each machine without "
            "emulating it; 'repro place <app-spec> --machines m1 m2 m3' plans "
            "task placement across heterogeneous machines (methods: eft, "
            "makespan) and '--validate' replays the plan on the simulation "
            "plane to report prediction error."
        ),
        parents=[telemetry],
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--store",
        default=_DEFAULT_STORE,
        help=f"profile store URL (default: {_DEFAULT_STORE})",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    def add_parser(name: str, **kwargs):
        return sub.add_parser(name, parents=[telemetry], **kwargs)

    p_profile = add_parser("profile", help="profile a command")
    p_profile.add_argument("command", help="shell command to profile")
    p_profile.add_argument("--tags", nargs="*", default=[], help="tags (k=v)")
    p_profile.add_argument("--rate", type=float, default=1.0, help="sample rate (Hz)")
    p_profile.add_argument("--machine", default=None, help="simulated machine (sim plane)")
    p_profile.add_argument("--repeats", type=int, default=1)

    p_emulate = add_parser("emulate", help="emulate a stored profile")
    p_emulate.add_argument("command", help="stored command to emulate")
    p_emulate.add_argument("--tags", nargs="*", default=[])
    p_emulate.add_argument("--kernel", default="asm", help="compute kernel")
    p_emulate.add_argument("--machine", default=None, help="simulated machine (sim plane)")
    p_emulate.add_argument("--openmp", type=int, default=1, help="OpenMP threads")
    p_emulate.add_argument("--mpi", type=int, default=1, help="MPI processes")

    p_app = add_parser(
        "profile-app", help="profile a simulated application model"
    )
    p_app.add_argument("spec", help="app spec, e.g. gromacs:iterations=1000000")
    p_app.add_argument("--machine", default="localhost", help="simulated machine")
    p_app.add_argument("--tags", nargs="*", default=[])
    p_app.add_argument("--rate", type=float, default=1.0)
    p_app.add_argument("--repeats", type=int, default=1)

    p_compare = add_parser(
        "compare", help="compare two stored profiles (e.g. app vs emulation)"
    )
    p_compare.add_argument("reference", help="reference command")
    p_compare.add_argument("measured", help="measured command")
    p_compare.add_argument("--reference-tags", nargs="*", default=[])
    p_compare.add_argument("--measured-tags", nargs="*", default=[])

    p_list = add_parser("list", help="list stored profiles")
    p_list.add_argument("--command", default=None)

    p_show = add_parser("show", help="show one stored profile")
    p_show.add_argument("command")
    p_show.add_argument("--tags", nargs="*", default=[])

    p_stats = add_parser("stats", help="statistics over stored repeats")
    p_stats.add_argument("command")
    p_stats.add_argument("--tags", nargs="*", default=[])

    p_report = add_parser("report", help="analysis report for a stored profile")
    p_report.add_argument("command")
    p_report.add_argument("--tags", nargs="*", default=[])

    p_export = add_parser("export", help="export a stored profile")
    p_export.add_argument("command")
    p_export.add_argument("--tags", nargs="*", default=[])
    p_export.add_argument("--format", choices=("csv", "trace"), default="csv")
    p_export.add_argument("--output", required=True, help="output file path")

    p_predict = add_parser(
        "predict", help="predict a stored profile's runtime on other machines"
    )
    p_predict.add_argument("command", help="stored command to predict")
    p_predict.add_argument("--tags", nargs="*", default=[])
    p_predict.add_argument(
        "--machines", nargs="+", default=None,
        help="target machine models (default: all registered)",
    )
    p_predict.add_argument(
        "--calibrated", action="store_true",
        help="charge kernel calibration bias (E.3 semantics)",
    )

    p_place = add_parser(
        "place", help="plan workload placement across machines"
    )
    p_place.add_argument("app", help="app spec, e.g. ensemble:width=8,stages=3")
    p_place.add_argument(
        "--machines", nargs="+", required=True, help="candidate machine models"
    )
    p_place.add_argument(
        "--method", choices=("eft", "makespan"), default="eft",
        help="placement heuristic (default: eft)",
    )
    p_place.add_argument(
        "--no-refine", action="store_true",
        help="skip the contention-aware refinement pass",
    )
    p_place.add_argument(
        "--validate", action="store_true",
        help="replay the plan on the sim plane and report prediction error",
    )

    p_campaign = add_parser(
        "campaign", help="run or resume a declarative sweep campaign"
    )
    p_campaign.add_argument("spec", help="campaign spec JSON file")
    p_campaign.add_argument(
        "--processes", type=int, default=None,
        help="worker processes for sim-plane cells (default: service decides)",
    )
    p_campaign.add_argument(
        "--limit", type=int, default=None,
        help="execute at most N pending cells this invocation (resume later)",
    )
    p_campaign.add_argument(
        "--json", default=None, help="write a machine-readable summary JSON here"
    )
    p_campaign.add_argument(
        "--shard", default=None, metavar="I/N",
        help="execute only this shard's digest-assigned partition of the "
             "pending cells (e.g. 0/2; run every shard against one store)",
    )
    p_campaign.add_argument(
        "--claim-ttl", type=float, default=None, metavar="SECONDS",
        help="how long a foreign cell claim defers a cell before its owner "
             "is presumed dead (sharded runs; default 900)",
    )
    p_campaign.add_argument(
        "--elastic", action="store_true",
        help="lease-based elastic execution: workers pull pending cells in "
             "leased batches from the shared store and steal leases from "
             "crashed, hung or drained members (replaces static --shard "
             "partitions; any number of invocations may share one store)",
    )
    p_campaign.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="with --elastic: spawn a local fleet of N elastic worker "
             "processes (default: one in-process worker)",
    )
    p_campaign.add_argument(
        "--join", default=None, metavar="NAME",
        help="with --elastic: attach one extra worker named NAME to a "
             "campaign already running elsewhere (another host, a fleet)",
    )
    p_campaign.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="with --elastic: a member silent this long is presumed dead "
             "and its leased cells are stolen (default 60)",
    )
    p_campaign.add_argument(
        "--report", action="store_true",
        help="do not execute; aggregate the ledger into the paper-style "
             "consistency/error report (execution flags are rejected; "
             "--json receives the analysis document)",
    )
    p_campaign.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="report output format (with --report; default: table)",
    )
    p_campaign.add_argument(
        "--reference", default=None, metavar="MACHINE",
        help="reference machine for the report's counter-error columns "
             "(default: first machine in the spec)",
    )
    p_campaign.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the per-wave progress lines",
    )

    p_traffic = add_parser(
        "traffic", help="simulate serving traffic through a machine fleet"
    )
    p_traffic.add_argument(
        "process", nargs="?", default="poisson:rate=100",
        help="arrival process spec: poisson:rate=R | "
             "mmpp:rates=R1/R2,dwells=D1/D2 | "
             "diurnal:rate=R,amplitude=A,period=S | trace:<path> "
             "(default: poisson:rate=100; ignored with --closed-loop)",
    )
    p_traffic.add_argument(
        "--machines", nargs="+", required=True, help="fleet machine models"
    )
    p_traffic.add_argument(
        "--requests", type=int, default=10000,
        help="number of requests to simulate (default: 10000)",
    )
    p_traffic.add_argument(
        "--discipline", choices=("fifo", "ps"), default="fifo",
        help="per-machine queue discipline (default: fifo)",
    )
    p_traffic.add_argument(
        "--dispatch", choices=("eft", "rr"), default="eft",
        help="request dispatch policy (default: eft = earliest finish)",
    )
    p_traffic.add_argument(
        "--alloc-cost", type=float, default=0.0, metavar="SECONDS",
        help="fixed machine allocation cost added to each request",
    )
    p_traffic.add_argument(
        "--closed-loop", type=int, default=None, metavar="CLIENTS",
        help="closed-loop mode: CLIENTS issue-wait-think loops instead of "
             "the open-loop arrival process",
    )
    p_traffic.add_argument(
        "--think", type=float, default=0.1, metavar="SECONDS",
        help="mean exponential think time in closed-loop mode (default 0.1)",
    )
    p_traffic.add_argument(
        "--slo-p99", type=float, default=None, metavar="SECONDS",
        help="enable in-sim autoscaling against this p99 latency SLO",
    )
    p_traffic.add_argument(
        "--max-machines", type=int, default=None,
        help="autoscaling ceiling (default: 2x the base fleet)",
    )
    p_traffic.add_argument(
        "--scale-every", type=int, default=5000, metavar="REQUESTS",
        help="requests between autoscale evaluations (default: 5000)",
    )
    p_traffic.add_argument(
        "--chunk", type=int, default=8192,
        help="arrival batch size streamed per step (default: 8192)",
    )
    p_traffic.add_argument(
        "--seed", type=int, default=0, help="trace seed (default: 0)"
    )
    p_traffic.add_argument(
        "--no-engine", action="store_true",
        help="skip engine-ledger accounting (queue/latency model only)",
    )
    p_traffic.add_argument(
        "--json", default=None, help="write the full report JSON here"
    )

    add_parser("machines", help="list simulated machine models")
    add_parser("metrics", help="print the Table 1 metric inventory")
    add_parser("kernels", help="list available compute kernels")
    add_parser("apps", help="list simulated application models")
    return parser


def _backend(machine: str | None):
    if machine is None:
        return None
    from repro.sim.backend import SimBackend  # noqa: PLC0415 (lazy)

    return SimBackend(machine)


def _cmd_profile(args: argparse.Namespace, out) -> int:
    store = open_store(args.store)
    config = SynapseConfig(sample_rate=args.rate)
    result = api_profile(
        args.command,
        tags=args.tags,
        backend=_backend(args.machine),
        config=config,
        store=store,
        repeats=args.repeats,
    )
    profiles = result if isinstance(result, list) else [result]
    for profile in profiles:
        print(
            f"profiled {profile.command!r} tags={list(profile.tags)} "
            f"Tx={format_duration(profile.tx)} samples={profile.n_samples}",
            file=out,
        )
    return 0


def _cmd_emulate(args: argparse.Namespace, out) -> int:
    store = open_store(args.store)
    config = SynapseConfig(
        compute_kernel=args.kernel,
        openmp_threads=args.openmp,
        mpi_processes=args.mpi,
    )
    result = api_emulate(
        args.command,
        tags=args.tags,
        backend=_backend(args.machine),
        config=config,
        store=store,
    )
    print(
        f"emulated {args.command!r} on {result.backend}: "
        f"Tx={format_duration(result.tx)} "
        f"(startup {format_duration(result.startup_delay)}, "
        f"kernel={config.compute_kernel})",
        file=out,
    )
    return 0


def _cmd_profile_app(args: argparse.Namespace, out) -> int:
    from repro.apps.registry import parse_app  # noqa: PLC0415 (lazy)
    from repro.sim.backend import SimBackend  # noqa: PLC0415

    store = open_store(args.store)
    app = parse_app(args.spec)
    config = SynapseConfig(sample_rate=args.rate)
    tags = dict(item.split("=", 1) for item in args.tags if "=" in item)
    merged_tags = {**app.tags(), **tags}
    result = api_profile(
        app,
        tags=merged_tags,
        backend=SimBackend(args.machine),
        config=config,
        store=store,
        repeats=args.repeats,
    )
    profiles = result if isinstance(result, list) else [result]
    for profile in profiles:
        print(
            f"profiled {profile.command!r} on {args.machine} "
            f"Tx={format_duration(profile.tx)} samples={profile.n_samples}",
            file=out,
        )
    return 0


def _cmd_compare(args: argparse.Namespace, out) -> int:
    from repro.core.compare import ProfileComparison  # noqa: PLC0415 (lazy)

    store = open_store(args.store)
    reference = store.find(args.reference, args.reference_tags)
    measured = store.find(args.measured, args.measured_tags)
    if not reference or not measured:
        raise ProfileNotFoundError("no matching profiles to compare")
    comparison = ProfileComparison.between(
        reference,
        measured,
        reference_label=args.reference,
        measured_label=args.measured,
    )
    print(comparison.table().render(), file=out)
    print(f"max error: {comparison.max_error():.2f}%", file=out)
    return 0


def _cmd_apps(args: argparse.Namespace, out) -> int:
    from repro.apps.registry import list_apps, parse_app  # noqa: PLC0415

    table = Table(["name", "default command", "default tags"])
    # sorted() even though the registry promises sorted names: listing
    # order is part of the CLI contract (campaign specs and tests build
    # on it) and must survive third-party registrations.
    for name in sorted(list_apps()):
        app = parse_app(name)
        table.add_row([name, app.command(), app.tags() or "-"])
    print(table.render(), file=out)
    return 0


def _cmd_campaign(args: argparse.Namespace, out) -> int:
    from repro.runtime.campaign import (  # noqa: PLC0415 (lazy)
        DEFAULT_CLAIM_TTL,
        CampaignSpec,
        run_campaign,
    )

    # Mode-dependent flags fail fast instead of being silently ignored:
    # forgetting --report must not turn a report request into an
    # hours-long sweep execution, and --report must not swallow
    # execution flags the user clearly meant to act.
    if args.report:
        rejected = [
            name for name, value in (
                ("--shard", args.shard), ("--claim-ttl", args.claim_ttl),
                ("--limit", args.limit), ("--processes", args.processes),
                ("--elastic", args.elastic or None),
                ("--workers", args.workers), ("--join", args.join),
                ("--lease-ttl", args.lease_ttl),
            )
            if value is not None
        ]
        if rejected:
            print(
                f"error: --report does not execute the campaign; drop "
                f"{', '.join(rejected)}",
                file=sys.stderr,
            )
            return 2
    else:
        if args.format != "table" or args.reference is not None:
            print("error: --format/--reference require --report", file=sys.stderr)
            return 2
        if not args.elastic:
            if args.workers is not None or args.join is not None \
                    or args.lease_ttl is not None:
                print(
                    "error: --workers/--join/--lease-ttl require --elastic",
                    file=sys.stderr,
                )
                return 2
            if args.claim_ttl is not None and args.shard is None:
                print(
                    "error: --claim-ttl requires --shard (claims only run "
                    "sharded)",
                    file=sys.stderr,
                )
                return 2
        else:
            if args.shard is not None or args.claim_ttl is not None:
                print(
                    "error: --elastic replaces static partitioning; drop "
                    "--shard/--claim-ttl (leases supersede claims)",
                    file=sys.stderr,
                )
                return 2
            if args.workers is not None and args.join is not None:
                print(
                    "error: --workers spawns a local fleet, --join attaches "
                    "one worker; pick one",
                    file=sys.stderr,
                )
                return 2
            if args.workers is not None and (
                args.processes is not None or args.limit is not None
            ):
                print(
                    "error: a --workers fleet runs each worker serially; "
                    "drop --processes/--limit",
                    file=sys.stderr,
                )
                return 2
    spec = CampaignSpec.from_json(args.spec)
    store = open_store(args.store)
    if args.report:
        from repro.runtime.analyze import analyze_campaign  # noqa: PLC0415 (lazy)

        analysis = analyze_campaign(spec, store, reference=args.reference)
        if not analysis.complete:
            # stderr, so `--format json`/`csv` stdout stays parseable.
            print(
                f"warning: ledger incomplete ({analysis.present_cells}/"
                f"{analysis.expected_cells} cells); report covers the "
                "completed cells only",
                file=sys.stderr,
            )
        if args.json:
            # Before the stdout render: a consumer truncating the pipe
            # (| head) must not cost the machine-readable artifact.
            from pathlib import Path  # noqa: PLC0415 (lazy)

            Path(args.json).write_text(analysis.to_json(), encoding="utf-8")
        print(analysis.render(args.format).rstrip("\n"), file=out)
        return 0
    def progress(summary: dict) -> None:
        print(
            f"wave {summary['wave']}/{summary['waves']}: "
            f"{summary['executed']} executed"
            + (f", {summary['failed']} failed" if summary["failed"] else "")
            + (f", {summary['deferred']} deferred" if summary["deferred"] else "")
            + f", completed {summary['completed']}/{summary['total']}"
            f" ({summary['pending']} pending), "
            f"{summary['elapsed']:.1f}s elapsed",
            file=out,
        )
        if hasattr(out, "flush"):
            out.flush()

    # Graceful shutdown: the first SIGTERM/SIGINT asks the campaign to
    # drain — the in-flight wave finishes, its artifacts and ledger
    # checkpoint land on the store, claim markers are released, and the
    # run reports ``interrupted`` (resumable later).  A second signal
    # aborts hard via the default KeyboardInterrupt path.
    import signal  # noqa: PLC0415 (lazy)

    stop_flag = {"stop": False}

    def _request_stop(signum, frame) -> None:
        if stop_flag["stop"]:
            raise KeyboardInterrupt
        stop_flag["stop"] = True
        print(
            "signal received: draining the current wave, then checkpointing "
            "(send again to abort hard)",
            file=sys.stderr,
        )

    previous_handlers = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _request_stop)
    except ValueError:
        # Not the main thread (e.g. a test harness driving main() from a
        # worker thread): run without signal-based draining.
        previous_handlers = {}
    try:
        if args.elastic:
            from repro.runtime.coordinator import (  # noqa: PLC0415 (lazy)
                DEFAULT_LEASE_TTL,
                elastic_worker,
                run_elastic,
            )

            lease_ttl = (
                args.lease_ttl if args.lease_ttl is not None
                else DEFAULT_LEASE_TTL
            )

            def elastic_progress(summary: dict) -> None:
                print(
                    f"wave {summary['wave']}: "
                    f"{summary['executed']} executed"
                    + (f", {summary['failed']} failed"
                       if summary["failed"] else "")
                    + (f", {summary['stolen']} stolen"
                       if summary["stolen"] else "")
                    + f", completed {summary['completed']}/{summary['total']}"
                    f", {summary['elapsed']:.1f}s elapsed",
                    file=out,
                )
                if hasattr(out, "flush"):
                    out.flush()

            if args.workers is not None:
                report = run_elastic(
                    spec, args.store,
                    workers=args.workers,
                    lease_ttl=lease_ttl,
                    stop=lambda: stop_flag["stop"],
                )
            else:
                report = elastic_worker(
                    spec, store,
                    worker=args.join,
                    lease_ttl=lease_ttl,
                    processes=args.processes,
                    limit=args.limit,
                    progress=None if args.quiet else elastic_progress,
                    stop=lambda: stop_flag["stop"],
                )
        else:
            report = run_campaign(
                spec, store,
                processes=args.processes,
                limit=args.limit,
                shard=args.shard,
                claim_ttl=(
                    args.claim_ttl if args.claim_ttl is not None
                    else DEFAULT_CLAIM_TTL
                ),
                progress=None if args.quiet else progress,
                stop=lambda: stop_flag["stop"],
            )
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    print(report.table().render(), file=out)
    if report.interrupted:
        print(
            f"campaign interrupted after a clean drain; {report.remaining} "
            "cells remaining — re-run the same command to resume",
            file=out,
        )
    for failure in report.failed:
        print(
            f"failed cell {failure['cell']}: {failure['app']} on "
            f"{failure['machine']}: {failure['error']}",
            file=out,
        )
    if args.json:
        import json as _json  # noqa: PLC0415 (lazy)
        from pathlib import Path  # noqa: PLC0415 (lazy)

        Path(args.json).write_text(
            _json.dumps(report.to_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 1 if report.failed else 0


def _cmd_list(args: argparse.Namespace, out) -> int:
    store = open_store(args.store)
    table = Table(["command", "tags", "profiles"])
    for command, tags, count in store.keys():
        if args.command is not None and command != args.command:
            continue
        table.add_row([command, ",".join(tags) or "-", count])
    print(table.render(), file=out)
    return 0


def _cmd_show(args: argparse.Namespace, out) -> int:
    store = open_store(args.store)
    profile: Profile = store.get(args.command, args.tags)
    print(f"command : {profile.command}", file=out)
    print(f"tags    : {list(profile.tags)}", file=out)
    print(f"machine : {profile.machine.get('name', '?')}", file=out)
    print(f"samples : {profile.n_samples} @ {profile.sample_rate} Hz", file=out)
    print(f"Tx      : {format_duration(profile.tx)}", file=out)
    table = Table(["metric", "total"])
    totals = profile.totals()
    for name in sorted(totals):
        table.add_row([name, totals[name]])
    for name, value in sorted(profile.derived().items()):
        table.add_row([f"{name} (derived)", value])
    print(table.render(), file=out)
    return 0


def _cmd_stats(args: argparse.Namespace, out) -> int:
    store = open_store(args.store)
    result = api_stats(args.command, args.tags, store=store)
    print(result.table().render(), file=out)
    return 0


def _cmd_report(args: argparse.Namespace, out) -> int:
    from repro.analysis.report import profile_report  # noqa: PLC0415 (lazy)

    store = open_store(args.store)
    profile = store.get(args.command, args.tags)
    print(profile_report(profile), file=out)
    return 0


def _cmd_export(args: argparse.Namespace, out) -> int:
    store = open_store(args.store)
    profile = store.get(args.command, args.tags)
    if args.format == "csv":
        from repro.export.csvout import profile_to_csv, write_csv  # noqa: PLC0415

        write_csv(profile_to_csv(profile), args.output)
    else:
        from repro.export.trace import dump_trace, profile_to_trace  # noqa: PLC0415

        dump_trace(profile_to_trace(profile), args.output)
    print(
        f"exported {profile.command!r} ({profile.n_samples} samples) "
        f"as {args.format} to {args.output}",
        file=out,
    )
    return 0


def _cmd_predict(args: argparse.Namespace, out) -> int:
    from repro.core.api import predict as api_predict  # noqa: PLC0415 (lazy)
    from repro.predict.predictor import Predictor  # noqa: PLC0415 (lazy)

    store = open_store(args.store)
    machines = args.machines if args.machines else list_machines()
    predictions = api_predict(
        args.command,
        machines,
        tags=args.tags,
        store=store,
        predictor=Predictor(calibrated=args.calibrated),
    )
    table = Table(
        ["machine", "compute [s]", "io [s]", "memory [s]", "network [s]", "total [s]"],
        title=f"predicted runtime of {args.command!r}",
    )
    for name in machines:
        p = predictions[name]
        table.add_row(
            [
                p.machine,
                p.compute_seconds,
                p.io_seconds,
                p.memory_seconds,
                p.network_seconds,
                p.seconds,
            ]
        )
    print(table.render(), file=out)
    return 0


def _cmd_place(args: argparse.Namespace, out) -> int:
    from repro.apps.registry import parse_app  # noqa: PLC0415 (lazy)
    from repro.core.api import place as api_place  # noqa: PLC0415 (lazy)

    app = parse_app(args.app)
    result = api_place(
        app,
        args.machines,
        method=args.method,
        refine=not args.no_refine,
        validate=args.validate,
    )
    plan, report = result if args.validate else (result, None)
    print(plan.table().render(), file=out)
    loads = plan.load()
    print(
        "per-machine busy time: "
        + ", ".join(f"{name}={loads[name]:.3f}s" for name in plan.machines),
        file=out,
    )
    print(f"predicted makespan: {format_duration(plan.makespan)}", file=out)
    if report is not None:
        print(report.table().render(), file=out)
    return 0


def _cmd_traffic(args: argparse.Namespace, out) -> int:
    from repro.core.api import traffic as api_traffic  # noqa: PLC0415 (lazy)

    autoscale = None
    if args.slo_p99 is not None:
        from repro.traffic.sim import AutoscalePolicy  # noqa: PLC0415 (lazy)

        max_machines = (
            args.max_machines
            if args.max_machines is not None
            else 2 * len(args.machines)
        )
        autoscale = AutoscalePolicy(
            slo_p99=args.slo_p99,
            max_machines=max_machines,
            every=args.scale_every,
        )
    report = api_traffic(
        args.process,
        args.machines,
        requests=args.requests,
        discipline=args.discipline,
        dispatch=args.dispatch,
        alloc_cost=args.alloc_cost,
        engine=not args.no_engine,
        autoscale=autoscale,
        closed_loop=args.closed_loop,
        think=args.think,
        chunk=args.chunk,
        seed=args.seed,
    )
    print(report.table(), file=out)
    if args.json:
        import json  # noqa: PLC0415 (lazy)

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
    return 0


def _cmd_machines(args: argparse.Namespace, out) -> int:
    table = Table(["name", "cores", "clock", "memory", "filesystems", "description"])
    for name in sorted(list_machines()):
        machine = get_machine(name)
        table.add_row(
            [
                name,
                machine.cpu.cores,
                format_frequency(machine.cpu.frequency),
                format_bytes(machine.memory_bytes),
                ",".join(sorted(machine.filesystems)),
                machine.description,
            ]
        )
    print(table.render(), file=out)
    return 0


def _cmd_metrics(args: argparse.Namespace, out) -> int:
    table = Table(["Resource", "Metric", "Tot.", "Sampl.", "Der.", "Emul."])
    for row in table1_rows():
        table.add_row(row)
    print(table.render(), file=out)
    return 0


def _cmd_kernels(args: argparse.Namespace, out) -> int:
    from repro.kernels.registry import get_kernel, list_kernels  # noqa: PLC0415

    table = Table(["name", "workload class", "description"])
    for name in sorted(list_kernels()):
        kernel = get_kernel(name)
        table.add_row([name, kernel.workload_class, kernel.description])
    print(table.render(), file=out)
    return 0


_COMMANDS = {
    "profile": _cmd_profile,
    "profile-app": _cmd_profile_app,
    "emulate": _cmd_emulate,
    "compare": _cmd_compare,
    "apps": _cmd_apps,
    "list": _cmd_list,
    "show": _cmd_show,
    "stats": _cmd_stats,
    "report": _cmd_report,
    "export": _cmd_export,
    "predict": _cmd_predict,
    "place": _cmd_place,
    "campaign": _cmd_campaign,
    "traffic": _cmd_traffic,
    "machines": _cmd_machines,
    "metrics": _cmd_metrics,
    "kernels": _cmd_kernels,
}


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.subcommand]
    sinks = configure_telemetry(
        log_level=getattr(args, "log_level", None),
        log_json=getattr(args, "log_json", False),
        trace=getattr(args, "trace", None),
    )
    faults_spec = getattr(args, "faults", None)
    fault_plan = None
    if faults_spec is not None:
        import os  # noqa: PLC0415 (lazy)

        from repro.faults import ENV_VAR, FaultPlan, activate  # noqa: PLC0415

        try:
            fault_plan = activate(FaultPlan.from_json(faults_spec))
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            print(f"error: bad fault plan: {exc}", file=sys.stderr)
            return 2
        # Exported so pool workers see the plan regardless of the
        # multiprocessing start method (fork inherits memory, spawn
        # re-reads the environment).
        os.environ[ENV_VAR] = faults_spec
    try:
        return handler(args, out)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if fault_plan is not None:
            import os  # noqa: PLC0415 (lazy)

            from repro.faults import ENV_VAR, deactivate  # noqa: PLC0415

            deactivate()
            os.environ.pop(ENV_VAR, None)
        bus = get_bus()
        for sink in sinks:
            bus.remove_sink(sink)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
