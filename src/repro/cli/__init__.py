"""Command-line tools wrapping the profile/emulate API (§4)."""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
