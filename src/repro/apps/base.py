"""Application model protocol for the simulation plane.

An *application model* is a parameterised generator of resource demands:
the simulation plane's stand-in for a real executable.  The profiler
treats it as a black box — it only ever sees the counters the engine
produces — so the models only need to reproduce the resource-consumption
*trace shape* of the application they replace (see DESIGN.md §2 for the
Gromacs substitution argument).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.sim.packed import PackedWorkload, pack_workload
from repro.sim.resource import MachineSpec
from repro.sim.workload import SimWorkload

__all__ = ["ApplicationModel"]


class ApplicationModel(ABC):
    """Base class of all virtual applications."""

    #: Short executable-like name; used as the profile command index.
    name: str = "app"

    @abstractmethod
    def build_workload(self, machine: MachineSpec) -> SimWorkload:
        """Emit the demand workload this application runs on ``machine``.

        Machine-dependence captures compile-time effects: the *same*
        science problem may execute a different number of instructions on
        different resources (the paper's main source of emulation
        uncertainty, §7).
        """

    def build_packed(self, machine: MachineSpec) -> PackedWorkload:
        """Columnar form of :meth:`build_workload` (same demands).

        The default compiles the object workload; models override it
        with a direct column builder so large workloads never
        materialise per-demand objects at all.  Both forms execute
        bit-identically.
        """
        return pack_workload(self.build_workload(machine))

    def command(self) -> str:
        """The command string under which profiles of this app are indexed."""
        return self.name

    def tags(self) -> dict[str, object]:
        """Tags distinguishing this parameterisation (e.g. iteration count)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag_text = ",".join(f"{k}={v}" for k, v in self.tags().items())
        return f"{type(self).__name__}({tag_text})"
