"""Virtual application models for the simulation plane.

* :class:`~repro.apps.gromacs.GromacsModel` — the paper's validation
  application (E.1–E.4);
* :class:`~repro.apps.synthetic.SyntheticApp` — fully tunable proxy
  workload (E.5 and the §2 use cases);
* :class:`~repro.apps.sleeper.SleeperApp` — the sleep(3) semantics
  limitation (§4.5);
* :class:`~repro.apps.ensemble.EnsembleApp` — staged ensemble workload
  (use case §2.3).
"""

from repro.apps.base import ApplicationModel
from repro.apps.ensemble import EnsembleApp, EnsembleStage
from repro.apps.gromacs import GromacsModel
from repro.apps.registry import list_apps, parse_app, register_app
from repro.apps.skeleton import SkeletonApp, chain, fan_out_fan_in
from repro.apps.sleeper import SleeperApp
from repro.apps.synthetic import SyntheticApp

__all__ = [
    "ApplicationModel",
    "EnsembleApp",
    "EnsembleStage",
    "GromacsModel",
    "SkeletonApp",
    "SleeperApp",
    "SyntheticApp",
    "chain",
    "fan_out_fan_in",
    "list_apps",
    "parse_app",
    "register_app",
]
