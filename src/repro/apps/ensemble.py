"""An ensemble-application model (use case §2.3, Ensemble Toolkit).

Ensemble-based applications run *stages* of concurrent tasks with
barriers between stages; the paper motivates Synapse as a proxy that can
"vary the duration and number of task instances between different stages
... and change the coupling between tasks".  This model expresses such a
pipeline directly in the engine's phase/stream structure: each stage is
one phase, each task one stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import ApplicationModel
from repro.sim.demands import ComputeDemand, IODemand
from repro.sim.packed import PackedBuilder, PackedWorkload
from repro.sim.resource import MachineSpec
from repro.sim.workload import SimWorkload

__all__ = ["EnsembleStage", "EnsembleApp"]


@dataclass(frozen=True)
class EnsembleStage:
    """One stage: ``tasks`` concurrent tasks of ``instructions`` each."""

    tasks: int
    instructions: float
    bytes_written: int = 0
    workload_class: str = "app.md"

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ValueError("tasks must be >= 1")
        if self.instructions < 0:
            raise ValueError("instructions must be non-negative")


@dataclass
class EnsembleApp(ApplicationModel):
    """A barrier-synchronised multi-stage ensemble workload.

    The default three stages mimic an advanced-sampling pipeline:
    a wide simulation stage, a narrow analysis stage, and a second
    simulation stage re-seeded from the analysis (§2.3).
    """

    stages: tuple[EnsembleStage, ...] = (
        EnsembleStage(tasks=8, instructions=4e9),
        EnsembleStage(tasks=1, instructions=1e9, workload_class="app.generic"),
        EnsembleStage(tasks=8, instructions=4e9),
    )
    name: str = field(default="ensemble_md", repr=False)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("at least one stage is required")

    def build_workload(self, machine: MachineSpec) -> SimWorkload:
        workload = SimWorkload(name=self.command(), metadata={"app": "ensemble"})
        for number, stage in enumerate(self.stages):
            phase = workload.phase(f"stage-{number}")
            for task in range(stage.tasks):
                stream = phase.stream(f"task-{task}")
                stream.add(
                    ComputeDemand(
                        instructions=stage.instructions,
                        workload_class=stage.workload_class,
                        flops_per_instruction=0.3,
                    )
                )
                if stage.bytes_written:
                    stream.add(
                        IODemand(
                            bytes_written=stage.bytes_written,
                            block_size=256 << 10,
                            filesystem=machine.default_fs,
                        )
                    )
        return workload

    def build_packed(self, machine: MachineSpec) -> PackedWorkload:
        """Direct columnar build mirroring :meth:`build_workload`."""
        b = PackedBuilder(self.command(), metadata={"app": "ensemble"})
        for number, stage in enumerate(self.stages):
            b.phase(f"stage-{number}")
            for task in range(stage.tasks):
                b.stream(f"task-{task}")
                b.compute(
                    instructions=stage.instructions,
                    workload_class=stage.workload_class,
                    flops_per_instruction=0.3,
                )
                if stage.bytes_written:
                    b.io(
                        bytes_written=stage.bytes_written,
                        block_size=256 << 10,
                        filesystem=machine.default_fs,
                    )
        return b.build()

    def command(self) -> str:
        return f"ensemble x{len(self.stages)}"

    def tags(self) -> dict[str, object]:
        return {
            "stages": len(self.stages),
            "tasks": "x".join(str(s.tasks) for s in self.stages),
        }
