"""A sleep-dominated application: the paper's semantics limitation.

§4.5 ("Application Semantics"): "the POSIX system call sleep(3) will
consume a very small number of flops (or cycles), but will show
significant contributions to Tx.  ...  that is considered out of scope
for Synapse".  This model makes the limitation testable: profiling it
yields a profile whose cycle total reconstructs only a tiny fraction of
Tx, and a default (compute-kernel) emulation finishes far too early —
unless the user selects the ``sleep`` kernel, the mitigation the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import ApplicationModel
from repro.sim.demands import ComputeDemand, SleepDemand
from repro.sim.packed import PackedBuilder, PackedWorkload
from repro.sim.resource import MachineSpec
from repro.sim.workload import SimWorkload

__all__ = ["SleeperApp"]


@dataclass
class SleeperApp(ApplicationModel):
    """Sleeps for ``sleep_seconds``, computing almost nothing."""

    sleep_seconds: float = 10.0
    #: Housekeeping instructions (signal handling, loop bookkeeping).
    instructions: float = 1e7
    name: str = field(default="sleeper", repr=False)

    def __post_init__(self) -> None:
        if self.sleep_seconds < 0:
            raise ValueError("sleep_seconds must be non-negative")

    def build_workload(self, machine: MachineSpec) -> SimWorkload:
        workload = SimWorkload(name=self.command(), metadata={"app": "sleeper"})
        stream = workload.phase("main").stream("main")
        stream.add(ComputeDemand(instructions=self.instructions / 2, workload_class="app.startup"))
        stream.add(SleepDemand(self.sleep_seconds))
        stream.add(ComputeDemand(instructions=self.instructions / 2, workload_class="app.startup"))
        return workload

    def build_packed(self, machine: MachineSpec) -> PackedWorkload:
        """Direct columnar build mirroring :meth:`build_workload`."""
        del machine
        b = PackedBuilder(self.command(), metadata={"app": "sleeper"})
        b.phase("main")
        b.stream("main")
        b.compute(instructions=self.instructions / 2, workload_class="app.startup")
        b.sleep(self.sleep_seconds)
        b.compute(instructions=self.instructions / 2, workload_class="app.startup")
        return b.build()

    def command(self) -> str:
        return f"sleep {self.sleep_seconds:g}"

    def tags(self) -> dict[str, object]:
        return {"seconds": self.sleep_seconds}
