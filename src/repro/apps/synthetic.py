"""A fully tunable synthetic application.

E.5 of the paper "uses a synthetic workload designed to characterize
Synapse's I/O emulation capabilities in isolation"; the same class also
serves as the generic proxy-application building block of the use cases
in §2 (task-parallel middleware development needs tasks with arbitrary
resource footprints).

Every dimension is an explicit constructor argument, mirroring the
paper's malleability requirement E.3: compute amount and workload class,
read/write volumes with block sizes and target filesystem, memory
footprint, network traffic, sleep time and single-node parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import ApplicationModel
from repro.sim.demands import (
    ComputeDemand,
    IODemand,
    MemoryDemand,
    NetworkDemand,
    SleepDemand,
)
from repro.sim.packed import PackedBuilder, PackedWorkload
from repro.sim.resource import MachineSpec
from repro.sim.workload import SimWorkload

__all__ = ["SyntheticApp"]


@dataclass
class SyntheticApp(ApplicationModel):
    """A proxy application with directly specified resource consumption."""

    instructions: float = 0.0
    workload_class: str = "app.generic"
    flop_fraction: float = 0.2
    bytes_read: int = 0
    bytes_written: int = 0
    io_block_size: int = 1 << 20
    filesystem: str = "default"
    memory_bytes: int = 0
    mem_block_size: int = 1 << 20
    net_sent: int = 0
    net_received: int = 0
    sleep_seconds: float = 0.0
    threads: int = 1
    paradigm: str = "openmp"
    chunks: int = 16
    #: Run compute and I/O in *concurrent* streams instead of serially
    #: (exercises the engine's intra-phase concurrency, Fig 2 semantics).
    overlap_io: bool = False
    name: str = field(default="synapse_synthetic", repr=False)

    def __post_init__(self) -> None:
        if self.chunks < 1:
            raise ValueError("chunks must be >= 1")
        if self.instructions < 0:
            raise ValueError("instructions must be non-negative")

    def build_workload(self, machine: MachineSpec) -> SimWorkload:
        workload = SimWorkload(
            name=self.command(),
            base_rss=2 << 20,
            metadata={"app": "synthetic"},
        )
        fs = self.filesystem if self.filesystem != "default" else machine.default_fs

        phase = workload.phase("main")
        compute_stream = phase.stream("compute")
        io_stream = compute_stream if not self.overlap_io else phase.stream("io")

        if self.memory_bytes:
            compute_stream.add(
                MemoryDemand(allocate=self.memory_bytes, block_size=self.mem_block_size)
            )
        if self.sleep_seconds:
            compute_stream.add(SleepDemand(self.sleep_seconds))

        for chunk in range(self.chunks):
            if self.instructions:
                compute_stream.add(
                    ComputeDemand(
                        instructions=self.instructions / self.chunks,
                        workload_class=self.workload_class,
                        flops_per_instruction=self.flop_fraction,
                        threads=self.threads,
                        paradigm=self.paradigm,
                    )
                )
            read_lo = self.bytes_read * chunk // self.chunks
            read_hi = self.bytes_read * (chunk + 1) // self.chunks
            write_lo = self.bytes_written * chunk // self.chunks
            write_hi = self.bytes_written * (chunk + 1) // self.chunks
            if read_hi > read_lo or write_hi > write_lo:
                io_stream.add(
                    IODemand(
                        bytes_read=read_hi - read_lo,
                        bytes_written=write_hi - write_lo,
                        block_size=self.io_block_size,
                        filesystem=fs,
                    )
                )
        if self.net_sent or self.net_received:
            compute_stream.add(
                NetworkDemand(bytes_sent=self.net_sent, bytes_received=self.net_received)
            )

        if self.memory_bytes:
            teardown = workload.phase("teardown")
            teardown.stream("main").add(
                MemoryDemand(free=self.memory_bytes, block_size=self.mem_block_size)
            )
        return workload

    def build_packed(self, machine: MachineSpec) -> PackedWorkload:
        """Direct columnar build: same demands as :meth:`build_workload`,
        in the same global order, with zero per-demand objects."""
        b = PackedBuilder(
            self.command(), base_rss=2 << 20, metadata={"app": "synthetic"}
        )
        fs = self.filesystem if self.filesystem != "default" else machine.default_fs

        def emit_io(chunk: int) -> None:
            read_lo = self.bytes_read * chunk // self.chunks
            read_hi = self.bytes_read * (chunk + 1) // self.chunks
            write_lo = self.bytes_written * chunk // self.chunks
            write_hi = self.bytes_written * (chunk + 1) // self.chunks
            if read_hi > read_lo or write_hi > write_lo:
                b.io(
                    bytes_read=read_hi - read_lo,
                    bytes_written=write_hi - write_lo,
                    block_size=self.io_block_size,
                    filesystem=fs,
                )

        b.phase("main")
        b.stream("compute")
        if self.memory_bytes:
            b.memory(allocate=self.memory_bytes, block_size=self.mem_block_size)
        if self.sleep_seconds:
            b.sleep(self.sleep_seconds)
        for chunk in range(self.chunks):
            if self.instructions:
                b.compute(
                    instructions=self.instructions / self.chunks,
                    workload_class=self.workload_class,
                    flops_per_instruction=self.flop_fraction,
                    threads=self.threads,
                    paradigm=self.paradigm,
                )
            if not self.overlap_io:
                emit_io(chunk)
        if self.net_sent or self.net_received:
            b.network(bytes_sent=self.net_sent, bytes_received=self.net_received)
        if self.overlap_io:
            b.stream("io")
            for chunk in range(self.chunks):
                emit_io(chunk)

        if self.memory_bytes:
            b.phase("teardown")
            b.stream("main")
            b.memory(free=self.memory_bytes, block_size=self.mem_block_size)
        return b.build()

    def command(self) -> str:
        return self.name

    def tags(self) -> dict[str, object]:
        return {
            "instructions": self.instructions,
            "read": self.bytes_read,
            "written": self.bytes_written,
            "bs": self.io_block_size,
            "fs": self.filesystem,
        }
