"""Application-Skeleton DAG workloads (the §7 integration).

The paper's related work discusses Application Skeletons (Katz et al.,
ref [24]): "Application Skeletons can be used to represent a DAG of such
components", while "Synapse ... provides configuration parameters at the
level of individual DAG components".  This module implements that
composition: a :class:`SkeletonApp` is a directed acyclic graph whose
nodes are *components* — any :class:`~repro.apps.base.ApplicationModel`
— and whose edges are dependencies.

Execution uses level synchronisation: the DAG's topological generations
map onto engine phases (barriers), and every component of a generation
runs as one concurrent stream.  This matches how DAG middleware executes
ready sets and lets the profiler observe the whole composed application
as a single black box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import networkx as nx

from repro.apps.base import ApplicationModel
from repro.core.errors import WorkloadError
from repro.sim.packed import PackedBuilder, PackedWorkload
from repro.sim.resource import MachineSpec
from repro.sim.workload import SimWorkload

__all__ = ["SkeletonApp", "chain", "fan_out_fan_in"]


@dataclass
class SkeletonApp(ApplicationModel):
    """A DAG of application components executed with level barriers.

    The graph's nodes carry their component model in the ``app`` node
    attribute::

        g = nx.DiGraph()
        g.add_node("prep",  app=SyntheticApp(bytes_read=64 << 20))
        g.add_node("sim",   app=GromacsModel(iterations=100_000))
        g.add_edge("prep", "sim")
        skeleton = SkeletonApp(graph=g)

    Components' own workloads are flattened: each component contributes
    one serial demand stream per generation (inner concurrency of a
    component is serialised — components that need concurrency should be
    split into multiple DAG nodes).
    """

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    name: str = field(default="skeleton", repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.graph, nx.DiGraph):
            raise WorkloadError("SkeletonApp needs a networkx.DiGraph")
        if self.graph.number_of_nodes() == 0:
            raise WorkloadError("skeleton graph has no components")
        if not nx.is_directed_acyclic_graph(self.graph):
            raise WorkloadError("skeleton graph must be acyclic")
        for node, data in self.graph.nodes(data=True):
            app = data.get("app")
            if not isinstance(app, ApplicationModel):
                raise WorkloadError(
                    f"node {node!r} lacks an ApplicationModel 'app' attribute"
                )

    # -- structure queries ---------------------------------------------------

    def generations(self) -> list[list[str]]:
        """Topological generations: the concurrent ready-sets in order."""
        return [sorted(gen) for gen in nx.topological_generations(self.graph)]

    def component(self, node: str) -> ApplicationModel:
        """The application model of one DAG node."""
        return self.graph.nodes[node]["app"]

    @property
    def n_components(self) -> int:
        """Number of DAG nodes."""
        return self.graph.number_of_nodes()

    def critical_path_length(self) -> int:
        """Number of generations (the DAG's depth)."""
        return len(self.generations())

    # -- workload construction --------------------------------------------------

    def build_workload(self, machine: MachineSpec) -> SimWorkload:
        workload = SimWorkload(
            name=self.command(),
            metadata={"app": "skeleton", "components": self.n_components},
        )
        for number, generation in enumerate(self.generations()):
            phase = workload.phase(f"generation-{number}")
            for node in generation:
                component = self.component(node)
                inner = component.build_workload(machine)
                stream = phase.stream(str(node))
                for inner_phase in inner.phases:
                    for inner_stream in inner_phase.streams:
                        stream.demands.extend(inner_stream.demands)
        return workload

    def build_packed(self, machine: MachineSpec) -> PackedWorkload:
        """Direct columnar build: components' packed workloads are
        flattened (their columns appended serially) into one stream per
        DAG node per generation — the columnar twin of the object
        flattening in :meth:`build_workload`."""
        b = PackedBuilder(
            self.command(),
            metadata={"app": "skeleton", "components": self.n_components},
        )
        for number, generation in enumerate(self.generations()):
            b.phase(f"generation-{number}")
            for node in generation:
                b.stream(str(node))
                b.append_flat(self.component(node).build_packed(machine))
        return b.build()

    def command(self) -> str:
        return f"skeleton n{self.n_components} d{self.critical_path_length()}"

    def tags(self) -> dict[str, object]:
        return {
            "components": self.n_components,
            "depth": self.critical_path_length(),
        }


def chain(components: Mapping[str, ApplicationModel], name: str = "skeleton-chain") -> SkeletonApp:
    """A linear pipeline: components execute strictly in mapping order."""
    if not components:
        raise WorkloadError("chain needs at least one component")
    graph = nx.DiGraph()
    previous = None
    for node, app in components.items():
        graph.add_node(node, app=app)
        if previous is not None:
            graph.add_edge(previous, node)
        previous = node
    return SkeletonApp(graph=graph, name=name)


def fan_out_fan_in(
    prepare: ApplicationModel,
    workers: Mapping[str, ApplicationModel],
    collect: ApplicationModel,
    name: str = "skeleton-fan",
) -> SkeletonApp:
    """The canonical scatter/gather skeleton: prepare -> workers -> collect."""
    if not workers:
        raise WorkloadError("fan_out_fan_in needs at least one worker")
    graph = nx.DiGraph()
    graph.add_node("prepare", app=prepare)
    graph.add_node("collect", app=collect)
    for node, app in workers.items():
        graph.add_node(node, app=app)
        graph.add_edge("prepare", node)
        graph.add_edge(node, "collect")
    return SkeletonApp(graph=graph, name=name)
