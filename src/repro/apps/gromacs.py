"""A Gromacs-like molecular-dynamics application model.

Gromacs is the validation application of the paper (§5): all of E.1–E.4
run it with iteration counts between 1e3 and 1e7.  The model reproduces
the resource-consumption trace the paper documents:

* CPU work grows linearly with the iteration count (Fig 6 top shows
  total operations spanning 1e9–1e12 over 1e4–1e7 iterations); on the
  Thinkie model this yields Tx between ~0.5 s and ~210 s (Fig 4);
* disk *output* grows with iterations (trajectory frames) while disk
  *input* (topology) and memory are constant in the problem size
  ("the number of steps influences both CPU consumption and disk output,
  but leaves disk input and memory consumption constant", §5);
* the resident set ramps up during startup to ~5.8 MB and is released
  before exit — which is exactly why low sampling rates *underestimate*
  resident memory in Fig 6 (bottom): a single sample taken at exit sees
  the torn-down heap;
* per-machine ``compiled_factor`` entries capture resource-specific
  compile-time optimisation: the same iteration count executes a
  different instruction stream on different resources (§4.5
  "Application Optimization" and §7 name this the dominant source of
  cross-resource emulation uncertainty).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import ApplicationModel
from repro.sim.demands import ComputeDemand, IODemand, MemoryDemand
from repro.sim.packed import PackedBuilder, PackedWorkload
from repro.sim.resource import MachineSpec
from repro.sim.workload import SimWorkload

__all__ = ["GromacsModel"]

#: Instructions executed per MD iteration (single-core reference build).
_INSTRUCTIONS_PER_ITERATION = 1.08e5
#: Setup instructions independent of the iteration count.
_BASE_INSTRUCTIONS = 5.0e8
#: Startup (binary + input parsing) instructions, at startup IPC.
_STARTUP_INSTRUCTIONS = 6.0e8
#: Topology/input bytes read at startup — constant in iterations.
_INPUT_BYTES = 2 << 20
#: Trajectory bytes written per iteration plus a constant log tail.
_OUTPUT_BYTES_PER_ITERATION = 0.42
_OUTPUT_BYTES_BASE = 4096
#: Resident-set model: interpreter/code base plus the simulation heap.
_BASE_RSS = int(2.2e6)
_HEAP_BYTES = int(3.6e6)
#: Fraction of instructions that are floating-point operations.
_FLOP_FRACTION = 0.35


@dataclass
class GromacsModel(ApplicationModel):
    """``gmx mdrun`` stand-in, parameterised by MD iteration count.

    Parameters
    ----------
    iterations:
        Number of MD steps (the paper sweeps 1e3 ... 1e7).
    threads:
        Single-node parallelism degree (Figs 13/14 scaling runs).
    paradigm:
        ``"openmp"`` (threads) or ``"mpi"`` (ranks); selects the
        machine's scaling model.
    chunks:
        Number of compute/I/O interleaving chunks; purely a trace
        granularity knob (totals are invariant to it).
    """

    iterations: int = 10_000
    threads: int = 1
    paradigm: str = "openmp"
    chunks: int = 64
    name: str = field(default="gmx_mdrun", repr=False)
    #: Per-machine instruction-count factor (compile-time optimisation).
    compiled_factor: dict[str, float] = field(
        default_factory=lambda: {
            "thinkie": 1.00,
            "stampede": 1.89,
            "archer": 0.87,
            "comet": 1.00,
            "supermic": 1.00,
            "titan": 1.00,
            "localhost": 1.00,
        }
    )

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.chunks < 1:
            raise ValueError("chunks must be >= 1")

    # -- demand model ------------------------------------------------------

    def instructions(self, machine: MachineSpec) -> float:
        """Total MD-loop instructions executed on ``machine``."""
        base = _BASE_INSTRUCTIONS + _INSTRUCTIONS_PER_ITERATION * self.iterations
        return base * self.compiled_factor.get(machine.name, 1.0)

    def bytes_written(self) -> int:
        """Total trajectory/log output bytes (machine independent)."""
        return int(_OUTPUT_BYTES_BASE + _OUTPUT_BYTES_PER_ITERATION * self.iterations)

    def bytes_read(self) -> int:
        """Input bytes (constant in the iteration count)."""
        return _INPUT_BYTES

    def build_workload(self, machine: MachineSpec) -> SimWorkload:
        workload = SimWorkload(
            name=self.command(),
            base_rss=_BASE_RSS,
            metadata={"app": "gromacs", "iterations": self.iterations},
        )
        fs = machine.default_fs

        # Startup: binary load, input read, heap allocation ramp.
        startup = workload.phase("startup")
        stream = startup.stream("main")
        stream.add(
            ComputeDemand(
                instructions=_STARTUP_INSTRUCTIONS * 0.3,
                workload_class="app.startup",
            )
        )
        stream.add(IODemand(bytes_read=self.bytes_read(), block_size=256 << 10, filesystem=fs))
        ramp_steps = 8
        for _ in range(ramp_steps):
            stream.add(MemoryDemand(allocate=_HEAP_BYTES // ramp_steps, block_size=256 << 10))
            stream.add(
                ComputeDemand(
                    instructions=_STARTUP_INSTRUCTIONS * 0.7 / ramp_steps,
                    workload_class="app.startup",
                )
            )

        # Main MD loop: compute chunks interleaved with trajectory writes.
        main = workload.phase("mdrun")
        stream = main.stream("main")
        instructions = self.instructions(machine)
        out_bytes = self.bytes_written()
        for chunk in range(self.chunks):
            stream.add(
                ComputeDemand(
                    instructions=instructions / self.chunks,
                    workload_class="app.md",
                    flops_per_instruction=_FLOP_FRACTION,
                    threads=self.threads,
                    paradigm=self.paradigm,
                )
            )
            lo = out_bytes * chunk // self.chunks
            hi = out_bytes * (chunk + 1) // self.chunks
            if hi > lo:
                stream.add(
                    IODemand(bytes_written=hi - lo, block_size=64 << 10, filesystem=fs)
                )

        # Teardown: release the simulation heap before exit.  This is what
        # makes single-sample (low-rate) profiles under-report RSS (Fig 6).
        teardown = workload.phase("teardown")
        stream = teardown.stream("main")
        stream.add(MemoryDemand(free=_HEAP_BYTES, block_size=1 << 20))
        stream.add(
            ComputeDemand(instructions=2e7, workload_class="app.startup")
        )
        return workload

    def build_packed(self, machine: MachineSpec) -> PackedWorkload:
        """Direct columnar build mirroring :meth:`build_workload`."""
        b = PackedBuilder(
            self.command(),
            base_rss=_BASE_RSS,
            metadata={"app": "gromacs", "iterations": self.iterations},
        )
        fs = machine.default_fs

        b.phase("startup")
        b.stream("main")
        b.compute(
            instructions=_STARTUP_INSTRUCTIONS * 0.3, workload_class="app.startup"
        )
        b.io(bytes_read=self.bytes_read(), block_size=256 << 10, filesystem=fs)
        ramp_steps = 8
        for _ in range(ramp_steps):
            b.memory(allocate=_HEAP_BYTES // ramp_steps, block_size=256 << 10)
            b.compute(
                instructions=_STARTUP_INSTRUCTIONS * 0.7 / ramp_steps,
                workload_class="app.startup",
            )

        b.phase("mdrun")
        b.stream("main")
        instructions = self.instructions(machine)
        out_bytes = self.bytes_written()
        for chunk in range(self.chunks):
            b.compute(
                instructions=instructions / self.chunks,
                workload_class="app.md",
                flops_per_instruction=_FLOP_FRACTION,
                threads=self.threads,
                paradigm=self.paradigm,
            )
            lo = out_bytes * chunk // self.chunks
            hi = out_bytes * (chunk + 1) // self.chunks
            if hi > lo:
                b.io(bytes_written=hi - lo, block_size=64 << 10, filesystem=fs)

        b.phase("teardown")
        b.stream("main")
        b.memory(free=_HEAP_BYTES, block_size=1 << 20)
        b.compute(instructions=2e7, workload_class="app.startup")
        return b.build()

    # -- profile indexing -----------------------------------------------------

    def command(self) -> str:
        return f"gmx mdrun -nsteps {self.iterations}"

    def tags(self) -> dict[str, object]:
        tags: dict[str, object] = {"tag_step": self.iterations}
        if self.threads > 1:
            tags["threads"] = self.threads
            tags["paradigm"] = self.paradigm
        return tags
