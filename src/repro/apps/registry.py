"""Application-model registry and spec parsing for the CLI.

The CLI profiles simulation-plane applications by *spec string*::

    gromacs                              # defaults
    gromacs:iterations=1000000,threads=4
    synthetic:instructions=1e9,bytes_written=64MB,filesystem=lustre
    sleeper:sleep_seconds=5
    ensemble:width=8,stages=3,instructions=6e9

Values are coerced: integers, floats (scientific notation allowed),
booleans, byte quantities with suffixes (``64MB``), else strings.
Third-party models register a factory with :func:`register_app`.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import ApplicationModel
from repro.apps.ensemble import EnsembleApp, EnsembleStage
from repro.apps.gromacs import GromacsModel
from repro.apps.sleeper import SleeperApp
from repro.apps.synthetic import SyntheticApp
from repro.core.errors import ConfigError
from repro.util.units import parse_bytes

__all__ = ["register_app", "parse_app", "list_apps"]

_FACTORIES: dict[str, Callable[..., ApplicationModel]] = {}


def register_app(name: str, factory: Callable[..., ApplicationModel]) -> None:
    """Register a model factory under a spec name."""
    if not name or ":" in name:
        raise ConfigError(f"invalid app name {name!r}")
    _FACTORIES[name] = factory


def list_apps() -> list[str]:
    """Names of all registered application models."""
    return sorted(_FACTORIES)


def _coerce(value: str) -> object:
    text = value.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return parse_bytes(text)
    except ValueError:
        pass
    return text


def parse_app(spec: str) -> ApplicationModel:
    """Build an application model from a CLI spec string."""
    name, _, params = spec.partition(":")
    name = name.strip()
    if name not in _FACTORIES:
        raise ConfigError(f"unknown app {name!r}; registered: {list_apps()}")
    kwargs: dict[str, object] = {}
    if params.strip():
        for item in params.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ConfigError(f"malformed app parameter {item!r} (expected k=v)")
            kwargs[key.strip()] = _coerce(value)
    try:
        return _FACTORIES[name](**kwargs)
    except TypeError as exc:
        raise ConfigError(f"bad parameters for app {name!r}: {exc}") from exc


def _ensemble_factory(
    width: int = 8,
    stages: int = 3,
    instructions: float = 6e9,
    bytes_written: int = 0,
) -> EnsembleApp:
    """Symmetric ensemble: ``stages`` stages of ``width`` tasks each,
    with a single-task analysis stage in every odd position."""
    if stages < 1:
        raise ConfigError("stages must be >= 1")
    built = []
    for index in range(stages):
        if index % 2 == 1:
            built.append(
                EnsembleStage(tasks=1, instructions=instructions / 3, workload_class="app.generic")
            )
        else:
            built.append(
                EnsembleStage(
                    tasks=int(width), instructions=instructions, bytes_written=int(bytes_written)
                )
            )
    return EnsembleApp(stages=tuple(built))


def _synthetic_factory(**kwargs: object) -> SyntheticApp:
    """Synthetic app with a non-empty default (1e9 instructions), so a
    bare ``synthetic`` spec produces a runnable workload."""
    return SyntheticApp(**{"instructions": 1e9, **kwargs})  # type: ignore[arg-type]


register_app("gromacs", GromacsModel)
register_app("synthetic", _synthetic_factory)
register_app("sleeper", SleeperApp)
register_app("ensemble", _ensemble_factory)
