"""File-based profile storage.

One JSON document per profile, stored under a root directory.  The paper
notes file-based storage "poses no limit on the number of samples"
(§4.5) — unlike the Mongo backend — and that property is preserved here.

File layout::

    <root>/<key-hash>/<created-ns>-<writer>-<seq>.json

where ``key-hash`` identifies the ``(command, tags)`` group, keeping
lookups for one application cheap without a separate index file.
``writer`` is a per-store token (PID plus random suffix): several
processes — or several stores in one process — writing the same group
in the same nanosecond produce distinct filenames instead of silently
clobbering each other (the per-store sequence number alone restarts
from zero in every new process).
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.errors import StoreError
from repro.core.samples import Profile
from repro.storage.base import ProfileStore

__all__ = ["FileStore"]


def _key_hash(command: str, tags: tuple[str, ...]) -> str:
    payload = json.dumps([command, list(tags)]).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


class FileStore(ProfileStore):
    """Profile store rooted at a directory (created on demand)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        self._writer = f"{os.getpid():x}{secrets.token_hex(4)}"

    def put(self, profile: Profile) -> str:
        group = self.root / _key_hash(profile.command, profile.tags)
        group.mkdir(parents=True, exist_ok=True)
        return self._write(group, profile)

    def put_many(self, profiles: Sequence[Profile] | Iterable[Profile]) -> list[str]:
        """Store a batch of profiles; returns their ids in order.

        Group directories are created once per distinct ``(command,
        tags)`` key instead of once per profile — the batch counterpart
        of :meth:`put` for experiment fan-out (``spawn_many`` replays,
        repeated profiling runs).
        """
        profiles = list(profiles)
        groups: dict[str, Path] = {}
        ids: list[str] = []
        for profile in profiles:
            key = _key_hash(profile.command, profile.tags)
            group = groups.get(key)
            if group is None:
                group = self.root / key
                group.mkdir(parents=True, exist_ok=True)
                groups[key] = group
            ids.append(self._write(group, profile))
        return ids

    def _write(self, group: Path, profile: Profile) -> str:
        self._seq += 1
        name = f"{int(profile.created * 1e9):020d}-{self._writer}-{self._seq:06d}.json"
        path = group / name
        tmp = path.with_suffix(".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(profile.to_dict(), handle)
            os.replace(tmp, path)
        except OSError as exc:  # disk full, permissions, ...
            raise StoreError(f"cannot write profile to {path}: {exc}") from exc
        return str(path.relative_to(self.root))

    def delete(self, pid: str) -> None:
        """Remove one stored profile by the id :meth:`put` returned."""
        path = self.root / pid
        try:
            path.unlink()
        except FileNotFoundError as exc:
            raise StoreError(f"no stored profile {pid!r}") from exc

    def _iter_profiles(self):
        for group in sorted(self.root.iterdir()):
            if not group.is_dir():
                continue
            for path in sorted(group.glob("*.json")):
                try:
                    with open(path, encoding="utf-8") as handle:
                        data = json.load(handle)
                except (OSError, json.JSONDecodeError) as exc:
                    raise StoreError(f"corrupt profile file {path}: {exc}") from exc
                yield str(path.relative_to(self.root)), Profile.from_dict(data)
