"""File-based profile storage with a per-group sidecar index.

One JSON document per profile, stored under a root directory.  The paper
notes file-based storage "poses no limit on the number of samples"
(§4.5) — unlike the Mongo backend — and that property is preserved here.

File layout::

    <root>/<key-hash>/<created-ns>-<writer>-<seq>.json   # one profile each
    <root>/<key-hash>/index.jsonl                        # sidecar index

where ``key-hash`` identifies the ``(command, tags)`` group.  ``writer``
is a per-store token (PID plus random suffix): several processes — or
several stores in one process — writing the same group in the same
nanosecond produce distinct filenames instead of silently clobbering
each other (the per-store sequence number alone restarts from zero in
every new process).

Sidecar index (``index.jsonl``)
-------------------------------

Each group carries an append-only journal with one JSON line per stored
profile::

    {"id": "<key-hash>/<file>.json", "command": ..., "tags": [...],
     "created": ..., "sum": "<blake2b-128 of the payload bytes>"}

``put``/``put_many`` append a line after writing the profile file, so
queries answer "which profiles match this command/tag filter" from the
index alone — no profile payload is opened until a match is confirmed.
The ``sum`` field is the integrity record: the first payload read of a
profile (cache misses only — the decoded-payload LRU never re-verifies)
re-hashes the file bytes against it and raises
:class:`~repro.core.errors.CorruptArtifactError` on mismatch (bit rot,
a torn overwrite, tampering), emitting a ``store.corrupt`` event.
Journal lines written before this field existed verify-on-first-read
instead: the computed digest is adopted and checked thereafter.
The journal is advisory, never authoritative: the ``*.json`` files in
the group directory are the truth, and every index load re-lists the
directory (names only, via ``scandir``) and reconciles:

* profile files missing from the journal (a writer crashed between the
  rename and the append, or a concurrent writer's append is mid-flight)
  are *healed* — their metadata is read once and journal-appended;
* journal lines whose file is gone (deleted profiles) are dropped;
* corrupt/truncated lines (torn concurrent appends, partial disk
  writes) are skipped and trigger a compacting rewrite of the journal.

Because validation compares directory listings rather than timestamps,
a second writer appending to a group is visible to every reader's next
query even within one filesystem-timestamp tick — the invariant the
sharded-campaign ledger depends on.  A group's ``(command, tags)``
identity is immutable (the directory name is its hash), so groups ruled
out by a query's command/tag filter are pruned from cache without any
directory I/O.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
from bisect import insort
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.errors import ConfigError, CorruptArtifactError, StoreError
from repro.core.samples import Profile
from repro.core.tags import normalize_command, normalize_tags
from repro.faults import inject
from repro.storage.base import ProfileStore, StoreEntry
from repro.storage.query import compile_query
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry, timed

__all__ = ["FileStore", "INDEX_NAME", "PAYLOAD_CACHE_SIZE"]

#: Name of the per-group sidecar index journal.
INDEX_NAME = "index.jsonl"

#: Decoded-payload LRU capacity (documents, not bytes).  Profile files
#: are immutable once renamed into place, so a cached parse stays valid
#: for as long as the ``(mtime_ns, size)`` stat signature matches.
PAYLOAD_CACHE_SIZE = 512


def _key_hash(command: str, tags: tuple[str, ...]) -> str:
    payload = json.dumps([command, list(tags)]).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _payload_sum(data: bytes) -> str:
    """Integrity digest of one profile file's exact bytes."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


@dataclass
class _GroupIndex:
    """Cached view of one group directory: identity + live files."""

    command: str
    tags: tuple[str, ...]
    #: ``(filename, created)`` for every live profile, filename-sorted
    #: (filenames start with the creation timestamp, so this is also
    #: write order within one writer).
    entries: list[tuple[str, float]] = field(default_factory=list)

    @property
    def names(self) -> set[str]:
        return {name for name, _created in self.entries}


class FileStore(ProfileStore):
    """Profile store rooted at a directory (created on demand).

    Queries are index-first: group directories are pruned by their
    cached ``(command, tags)`` identity, surviving groups are validated
    against a names-only directory listing, and profile payloads are
    parsed only for confirmed candidates (lazily —
    ``find(query=...)`` matches the raw stored document and only builds
    :class:`~repro.core.samples.Profile` objects for accepted ones).
    """

    #: Accepted ``durability`` modes (see ``__init__``).
    DURABILITY_MODES = ("default", "fsync")

    def __init__(
        self, root: str | os.PathLike, durability: str = "default"
    ) -> None:
        """``durability="fsync"`` makes :meth:`put` crash-durable: the
        profile file is fsynced before the atomic rename, the group
        directory entry after it, and journal appends before returning —
        a power loss after ``put`` returns cannot tear or lose the
        profile.  The default leaves flushing to the OS (atomic renames
        already prevent torn reads; a crash can only lose the very last
        writes)."""
        if durability not in self.DURABILITY_MODES:
            raise ConfigError(
                f"unknown FileStore durability {durability!r}; expected "
                f"one of {self.DURABILITY_MODES}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.durability = durability
        self._seq = 0
        self._writer = f"{os.getpid():x}{secrets.token_hex(4)}"
        self._groups: dict[str, _GroupIndex] = {}
        #: pid -> ((mtime_ns, size), decoded document), LRU-ordered.
        self._payloads: OrderedDict[str, tuple[tuple[int, int], dict[str, Any]]] = (
            OrderedDict()
        )
        #: pid -> expected payload digest (own writes + journal loads).
        self._sums: dict[str, str] = {}
        #: Groups whose journal is mid-load: heal-path payload reads must
        #: not re-enter ``_group_index`` for them (see ``_cached_doc``).
        self._loading: set[str] = set()

    def _fsync_dir(self, path: Path) -> None:
        """Flush a directory entry (rename/create) to stable storage."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # platform without directory fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- writes ---------------------------------------------------------------

    def put(self, profile: Profile) -> str:
        with timed("store.put.seconds"):
            group = self.root / _key_hash(profile.command, profile.tags)
            group.mkdir(parents=True, exist_ok=True)
            pid = self._write(group, profile)
            self._journal_append(group, [(pid, profile)])
        return pid

    def put_many(self, profiles: Sequence[Profile] | Iterable[Profile]) -> list[str]:
        """Store a batch of profiles; returns their ids in order.

        Group directories are created and journal appends flushed once
        per distinct ``(command, tags)`` key instead of once per profile
        — the batch counterpart of :meth:`put` for experiment fan-out
        (``spawn_many`` replays, campaign waves, repeated profiling).
        """
        with timed("store.put.seconds"):
            profiles = list(profiles)
            groups: dict[str, Path] = {}
            written: dict[str, list[tuple[str, Profile]]] = {}
            ids: list[str] = []
            for profile in profiles:
                key = _key_hash(profile.command, profile.tags)
                group = groups.get(key)
                if group is None:
                    group = self.root / key
                    group.mkdir(parents=True, exist_ok=True)
                    groups[key] = group
                pid = self._write(group, profile)
                written.setdefault(key, []).append((pid, profile))
                ids.append(pid)
            for key, items in written.items():
                self._journal_append(groups[key], items)
        return ids

    def _write(self, group: Path, profile: Profile) -> str:
        self._seq += 1
        name = f"{int(profile.created * 1e9):020d}-{self._writer}-{self._seq:06d}.json"
        path = group / name
        tmp = path.with_suffix(".tmp")
        data = json.dumps(profile.to_dict()).encode("utf-8")
        # One retry after re-creating the group: a reader's empty-group
        # GC (see _load_group_index) may rmdir the directory between our
        # mkdir and this first write.
        inject("store.put", key=profile.command)
        for attempt in (0, 1):
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    if self.durability == "fsync":
                        handle.flush()
                        os.fsync(handle.fileno())
                os.replace(tmp, path)
                if self.durability == "fsync":
                    self._fsync_dir(group)
                break
            except OSError as exc:  # vanished group, disk full, permissions, ...
                if attempt == 0 and not group.is_dir():
                    group.mkdir(parents=True, exist_ok=True)
                    continue
                raise StoreError(f"cannot write profile to {path}: {exc}") from exc
        pid = str(path.relative_to(self.root))
        self._sums[pid] = _payload_sum(data)
        return pid

    @staticmethod
    def _journal_line(
        pid: str,
        command: str,
        tags: tuple[str, ...],
        created: float,
        digest: str | None = None,
    ) -> str:
        """One sidecar index record (see the module docstring's layout)."""
        row: dict[str, Any] = {
            "id": pid, "command": command, "tags": list(tags), "created": created,
        }
        if digest is not None:
            row["sum"] = digest
        return json.dumps(row) + "\n"

    def _journal_append(self, group: Path, items: list[tuple[str, Profile]]) -> None:
        """Append index lines for freshly written profiles (best-effort).

        The profile files are authoritative; a failed or torn append is
        healed by the next index load, so journal trouble never fails a
        ``put``.
        """
        lines = "".join(
            self._journal_line(
                pid, profile.command, profile.tags, profile.created,
                digest=self._sums.get(pid),
            )
            for pid, profile in items
        )
        try:
            # Inside the best-effort boundary: an injected OSError
            # (``"error": "os"`` rules) exercises the journal-loss
            # healing path without failing the put.
            inject("store.journal", key=group.name)
            with open(group / INDEX_NAME, "a", encoding="utf-8") as handle:
                handle.write(lines)
                if self.durability == "fsync":
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:
            pass
        cached = self._groups.get(group.name)
        if cached is not None:
            for pid, profile in items:
                insort(cached.entries, (pid.rpartition("/")[2], profile.created))

    def delete(self, pid: str) -> None:
        """Remove one stored profile by the id :meth:`put` returned.

        The journal line is left behind; index loads drop lines whose
        file is gone and eventually compact them away.
        """
        path = self.root / pid
        try:
            path.unlink()
        except FileNotFoundError as exc:
            raise StoreError(f"no stored profile {pid!r}") from exc
        self._groups.pop(path.parent.name, None)
        self._payloads.pop(pid, None)
        self._sums.pop(pid, None)

    # -- index plane ----------------------------------------------------------

    def _group_dirs(self) -> list[str]:
        try:
            with os.scandir(self.root) as it:
                return sorted(entry.name for entry in it if entry.is_dir())
        except OSError:
            return []

    def _group_index(self, gname: str) -> _GroupIndex | None:
        """Validated index of one group (``None`` when empty/unreadable).

        Always re-lists the directory (names only) and reuses the cached
        parse when the live file set is unchanged; otherwise reloads and
        reconciles the journal.
        """
        group = self.root / gname
        try:
            with os.scandir(group) as it:
                names = sorted(
                    entry.name
                    for entry in it
                    if entry.name.endswith(".json") and entry.is_file()
                )
        except OSError:
            self._groups.pop(gname, None)
            return None
        cached = self._groups.get(gname)
        if cached is not None and len(cached.entries) == len(names):
            if cached.names == set(names):
                get_registry().inc("store.index.hit")
                return cached
        get_registry().inc("store.index.miss")
        self._loading.add(gname)
        try:
            index = self._load_group_index(group, names)
        finally:
            self._loading.discard(gname)
        if index is not None:
            self._groups[gname] = index
        else:
            self._groups.pop(gname, None)
        return index

    def _load_group_index(
        self, group: Path, names: list[str]
    ) -> _GroupIndex | None:
        """Parse + reconcile one group's journal against its live files."""
        known: dict[str, tuple[str, tuple[str, ...], float, str | None]] = {}
        dirty = False  # corrupt lines or stale entries -> compact
        try:
            with open(group / INDEX_NAME, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                        name = str(row["id"]).rpartition("/")[2]
                        digest = row.get("sum")
                        record = (
                            str(row["command"]),
                            tuple(str(tag) for tag in row["tags"]),
                            float(row["created"]),
                            str(digest) if digest is not None else None,
                        )
                    except (ValueError, KeyError, TypeError):
                        dirty = True  # torn append / partial write
                        continue
                    known.setdefault(name, record)
        except FileNotFoundError:
            pass
        except OSError:
            dirty = True
        live = set(names)
        if set(known) - live:
            dirty = True  # deleted profiles left stale journal lines
        # Adopt the journal's integrity digests before any payload read
        # below, so healing verifies against them where they exist.
        for name, record in known.items():
            if record[3] is not None and name in live:
                self._sums.setdefault(f"{group.name}/{name}", record[3])
        missing = [name for name in names if name not in known]
        healed: dict[str, tuple[str, tuple[str, ...], float, str | None]] = {}
        for name in missing:
            # Only the index fields are needed — read them off the raw
            # document instead of deserialising every sample.  Healing
            # goes through the payload cache so a follow-up ``get`` of
            # the same profile reuses this parse (and records the file's
            # digest, journal-appended with the healed line).
            pid = f"{group.name}/{name}"
            doc = self._cached_doc(pid)
            healed[name] = (
                str(doc["command"]),
                tuple(str(tag) for tag in doc.get("tags", ())),
                float(doc.get("created", 0.0)),
                self._sums.get(pid),
            )
        if not live:
            # Garbage-collect a dead group (every profile deleted — e.g.
            # a cleaned-up campaign claim): drop the stale journal and
            # the directory itself so future queries stop re-scanning
            # it.  A concurrent writer reviving the group wins the race:
            # rmdir fails on a non-empty directory, and ``_write``
            # re-creates a directory GC'd out from under it and retries.
            try:
                (group / INDEX_NAME).unlink(missing_ok=True)
                os.rmdir(group)
            except OSError:
                pass
            return None
        merged = {name: known.get(name) or healed[name] for name in names}
        first = merged[names[0]]
        index = _GroupIndex(
            command=first[0],
            tags=first[1],
            entries=[(name, merged[name][2]) for name in names],
        )
        if dirty:
            self._journal_rewrite(group, merged)
        elif healed:
            self._journal_append_records(group, healed)
        return index

    def _journal_append_records(
        self,
        group: Path,
        records: Mapping[str, tuple[str, tuple[str, ...], float, str | None]],
    ) -> None:
        lines = "".join(
            self._journal_line(f"{group.name}/{name}", command, tags, created, digest)
            for name, (command, tags, created, digest) in records.items()
        )
        try:
            with open(group / INDEX_NAME, "a", encoding="utf-8") as handle:
                handle.write(lines)
        except OSError:
            pass

    def _journal_rewrite(
        self,
        group: Path,
        records: Mapping[str, tuple[str, tuple[str, ...], float, str | None]],
    ) -> None:
        """Atomically compact the journal to exactly the live records.

        A concurrent writer's append racing this rewrite can lose its
        line, never its profile file — the next load heals the journal.
        """
        tmp = group / f"{INDEX_NAME}.{self._writer}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for name in sorted(records):
                    command, tags, created, digest = records[name]
                    handle.write(
                        self._journal_line(
                            f"{group.name}/{name}", command, tags, created, digest
                        )
                    )
            os.replace(tmp, group / INDEX_NAME)
        except OSError:
            tmp.unlink(missing_ok=True)

    def _matching_groups(
        self, command: object, tags: object
    ) -> list[tuple[str, _GroupIndex]]:
        """Group indexes surviving the command/tag filter, name-sorted.

        A group's identity is immutable, so cached non-matching groups
        are pruned without any directory I/O; only matching (or not yet
        cached) groups pay the names-only listing.
        """
        want_command = normalize_command(command) if command is not None else None
        wanted = set(normalize_tags(tags))

        def matches_filter(index: _GroupIndex) -> bool:
            if want_command is not None and index.command != want_command:
                return False
            return wanted <= set(index.tags)

        survivors: list[tuple[str, _GroupIndex]] = []
        for gname in self._group_dirs():
            cached = self._groups.get(gname)
            if cached is not None and not matches_filter(cached):
                continue
            index = self._group_index(gname)
            if index is not None and matches_filter(index):
                survivors.append((gname, index))
        return survivors

    def entries(
        self, command: object = None, tags: object = None
    ) -> list[StoreEntry]:
        inject("store.entries")
        with timed("store.entries.seconds"):
            found = [
                StoreEntry(f"{gname}/{name}", index.command, index.tags, created)
                for gname, index in self._matching_groups(command, tags)
                for name, created in index.entries
            ]
        # Ids are ``<group>/<file>`` with fixed-width components, so the
        # (created, id) sort reproduces the reference scan's order:
        # created oldest-first, ties in directory-walk order.
        found.sort(key=lambda entry: (entry.created, entry.id))
        return found

    # -- payload plane --------------------------------------------------------

    def _read_doc(self, pid: str, path: Path) -> dict[str, Any]:
        """Read + integrity-check + parse one profile file.

        The file's bytes are re-hashed against the digest the sidecar
        journal (or this store's own ``put``) recorded; a mismatch is
        **fatal** — re-reading corrupt bytes returns the same corrupt
        bytes — so it raises :class:`CorruptArtifactError` instead of a
        retryable :class:`StoreError`.  Files without a recorded digest
        (journals predating the ``sum`` field) adopt the computed one,
        pinning all subsequent reads.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError as exc:
            raise StoreError(
                f"no stored profile {str(path.relative_to(self.root))!r}"
            ) from exc
        except OSError as exc:
            raise StoreError(f"corrupt profile file {path}: {exc}") from exc
        actual = _payload_sum(data)
        expected = self._sums.get(pid)
        if expected is None:
            self._sums[pid] = actual
        elif actual != expected:
            get_registry().inc("store.corrupt")
            get_bus().event(
                "store.corrupt", level="error", id=pid,
                expected=expected, actual=actual,
            )
            raise CorruptArtifactError(
                f"stored profile {pid!r} failed its integrity check: journal "
                f"recorded blake2b {expected}, file bytes hash to {actual}"
            )
        try:
            return json.loads(data)
        except (ValueError, UnicodeDecodeError) as exc:
            raise StoreError(f"corrupt profile file {path}: {exc}") from exc

    def _cached_doc(self, pid: str) -> dict[str, Any]:
        """Decoded document of one profile, via the payload LRU.

        Profile files never change in place (writes are rename-only), so
        a ``(mtime_ns, size)`` stat signature decides reuse: a match
        skips open+parse (and integrity verification) entirely; any
        mismatch — or a replaced file — re-reads, re-verifies and
        refreshes the cache.  Callers must not mutate the returned
        document (``Profile.from_dict`` copies what it keeps).
        """
        path = self.root / pid
        try:
            st = os.stat(path)
            sig = (st.st_mtime_ns, st.st_size)
        except OSError:
            sig = None
        if sig is not None:
            cached = self._payloads.get(pid)
            if cached is not None and cached[0] == sig:
                self._payloads.move_to_end(pid)
                get_registry().inc("store.payload.hit")
                return cached[1]
        get_registry().inc("store.payload.miss")
        # A direct ``get`` of an id this store never wrote or indexed
        # (cross-process reads) loads the group journal first so its
        # recorded digest — not trust-on-first-read — judges the bytes.
        gname = pid.partition("/")[0]
        if (
            pid not in self._sums
            and gname not in self._groups
            and gname not in self._loading
        ):
            self._group_index(gname)
        doc = self._read_doc(pid, path)
        if sig is not None:
            self._payloads[pid] = (sig, doc)
            self._payloads.move_to_end(pid)
            while len(self._payloads) > PAYLOAD_CACHE_SIZE:
                self._payloads.popitem(last=False)
        return doc

    def get_many(self, ids) -> list[Profile]:
        ids = list(ids)
        if ids:
            inject("store.get", key=str(ids[0]))
        with timed("store.get.seconds"):
            return [Profile.from_dict(self._cached_doc(pid)) for pid in ids]

    def find(
        self,
        command: object = None,
        tags: object = None,
        query: Mapping[str, Any] | None = None,
    ) -> list[Profile]:
        with timed("store.find.seconds"):
            matcher = compile_query(query) if query is not None else None
            found: list[tuple[float, str, Profile]] = []
            for gname, index in self._matching_groups(command, tags):
                for name, created in index.entries:
                    pid = f"{gname}/{name}"
                    doc = self._cached_doc(pid)
                    if matcher is not None and not matcher(doc):
                        continue
                    found.append((created, pid, Profile.from_dict(doc)))
            found.sort(key=lambda item: item[:2])
        return [profile for _created, _pid, profile in found]

    def find_ids(
        self,
        command: object = None,
        tags: object = None,
        query: Mapping[str, Any] | None = None,
    ) -> list[str]:
        if query is None:
            return [entry.id for entry in self.entries(command, tags)]
        matcher = compile_query(query)
        found = [
            (created, f"{gname}/{name}")
            for gname, index in self._matching_groups(command, tags)
            for name, created in index.entries
            if matcher(self._cached_doc(f"{gname}/{name}"))
        ]
        found.sort()
        return [pid for _created, pid in found]

    # -- brute-force reference ------------------------------------------------

    def _iter_profiles(self):
        for group in sorted(self.root.iterdir()):
            if not group.is_dir():
                continue
            for path in sorted(group.glob("*.json")):
                try:
                    with open(path, encoding="utf-8") as handle:
                        data = json.load(handle)
                except (OSError, json.JSONDecodeError) as exc:
                    raise StoreError(f"corrupt profile file {path}: {exc}") from exc
                yield str(path.relative_to(self.root)), Profile.from_dict(data)
