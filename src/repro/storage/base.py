"""Profile store protocol and the in-memory reference implementation.

Stores index profiles by their ``(command, tags)`` search key, exactly as
the paper describes (§4): the profile method "stores the results on disk
or in a MongoDB database; the application startup command and custom tags
are used as search index".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from typing import Any

from repro.core.errors import ProfileNotFoundError
from repro.core.samples import Profile
from repro.core.tags import normalize_command, normalize_tags, tags_match
from repro.storage.query import matches

__all__ = ["ProfileStore", "MemoryStore"]


class ProfileStore(ABC):
    """Common interface of the file-based and Mongo-like profile stores."""

    @abstractmethod
    def put(self, profile: Profile) -> str:
        """Persist a profile; returns its store-assigned id.

        Implementations may mutate-by-copy (e.g. truncate samples to fit a
        document size limit); the stored object is what :meth:`find`
        returns later, which may differ from the argument.
        """

    def put_many(self, profiles) -> list[str]:
        """Persist a batch of profiles; returns their ids in order.

        The default stores one by one; implementations may batch the
        shared setup (the file store creates each group directory once).
        """
        return [self.put(profile) for profile in profiles]

    @abstractmethod
    def _iter_profiles(self):
        """Yield ``(id, Profile)`` pairs for all stored profiles."""

    # -- shared query logic ---------------------------------------------------

    def find(
        self,
        command: object = None,
        tags: object = None,
        query: Mapping[str, Any] | None = None,
    ) -> list[Profile]:
        """All stored profiles matching command, tags and optional query.

        ``command`` matches exactly (after normalisation); ``tags``
        matches by subset; ``query`` is a Mongo-style filter over the
        profile's dict form.  Results are ordered oldest-first.
        """
        want_command = normalize_command(command) if command is not None else None
        results: list[Profile] = []
        for _pid, profile in self._iter_profiles():
            if want_command is not None and profile.command != want_command:
                continue
            if not tags_match(profile.tags, tags):
                continue
            if query is not None and not matches(profile.to_dict(), query):
                continue
            results.append(profile)
        results.sort(key=lambda p: p.created)
        return results

    def get(self, command: object, tags: object = None) -> Profile:
        """The most recent matching profile (raises if none exists)."""
        found = self.find(command, tags)
        if not found:
            raise ProfileNotFoundError(
                f"no profile for command={normalize_command(command)!r} "
                f"tags={normalize_tags(tags)!r}"
            )
        return found[-1]

    def count(self) -> int:
        """Number of stored profiles."""
        return sum(1 for _ in self._iter_profiles())

    def keys(self) -> list[tuple[str, tuple[str, ...], int]]:
        """Distinct ``(command, tags, n_profiles)`` groups in the store."""
        groups: dict[tuple[str, tuple[str, ...]], int] = {}
        for _pid, profile in self._iter_profiles():
            key = (profile.command, profile.tags)
            groups[key] = groups.get(key, 0) + 1
        return sorted((cmd, tags, n) for (cmd, tags), n in groups.items())


class MemoryStore(ProfileStore):
    """Volatile store; useful for tests and single-process experiments."""

    def __init__(self) -> None:
        self._profiles: dict[str, Profile] = {}
        self._next_id = 0

    def put(self, profile: Profile) -> str:
        pid = f"mem-{self._next_id}"
        self._next_id += 1
        self._profiles[pid] = profile
        return pid

    def delete(self, pid: str) -> None:
        """Remove one profile by id (missing ids raise ``KeyError``)."""
        del self._profiles[pid]

    def clear(self) -> None:
        """Remove all stored profiles."""
        self._profiles.clear()

    def _iter_profiles(self):
        yield from self._profiles.items()
