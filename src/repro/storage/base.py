"""Profile store protocol and the in-memory reference implementation.

Stores index profiles by their ``(command, tags)`` search key, exactly as
the paper describes (§4): the profile method "stores the results on disk
or in a MongoDB database; the application startup command and custom tags
are used as search index".

Two access planes, one contract:

* **Payload plane** — :meth:`ProfileStore.find` / :meth:`get` /
  :meth:`get_many` return full :class:`~repro.core.samples.Profile`
  objects (samples and all).
* **Index plane** — :meth:`ProfileStore.entries` / :meth:`ids_for` /
  :meth:`find_ids` answer "which profiles match" from the store's
  ``(command, tags)`` index as lightweight :class:`StoreEntry` records,
  *without* deserialising profile payloads.  Campaign ledgers, claim
  scans and placement lookups live on this plane.

The base class supplies brute-force implementations over
:meth:`_iter_profiles` (every profile loaded and tested); concrete
stores override them with indexed sublinear versions.  The brute-force
``find`` doubles as the correctness reference: indexed results are
pinned bit-identical to ``ProfileStore.find(store, ...)`` by the store
test suite and ``benchmarks/bench_e9_store.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from typing import Any, NamedTuple

from repro.core.errors import ProfileNotFoundError, StoreError
from repro.core.samples import Profile
from repro.core.tags import normalize_command, normalize_tags, tags_match
from repro.faults import inject
from repro.storage.query import compile_query
from repro.telemetry.metrics import timed

__all__ = ["ProfileStore", "MemoryStore", "StoreEntry"]


class StoreEntry(NamedTuple):
    """One profile's index record: identity without the payload."""

    #: Store-assigned id, usable with :meth:`ProfileStore.get_many`.
    id: str
    command: str
    tags: tuple[str, ...]
    created: float


class ProfileStore(ABC):
    """Common interface of the file-based and Mongo-like profile stores."""

    @abstractmethod
    def put(self, profile: Profile) -> str:
        """Persist a profile; returns its store-assigned id.

        Implementations may mutate-by-copy (e.g. truncate samples to fit a
        document size limit); the stored object is what :meth:`find`
        returns later, which may differ from the argument.
        """

    def put_many(self, profiles) -> list[str]:
        """Persist a batch of profiles; returns their ids in order.

        The default stores one by one; implementations may batch the
        shared setup (the file store creates each group directory once).
        """
        return [self.put(profile) for profile in profiles]

    @abstractmethod
    def _iter_profiles(self):
        """Yield ``(id, Profile)`` pairs for all stored profiles.

        This is the brute-force full scan; it deserialises every stored
        payload and exists as the reference the indexed paths are pinned
        against (and as the fallback for stores without an index).
        """

    # -- index plane (no payload deserialisation) -----------------------------

    def entries(
        self, command: object = None, tags: object = None
    ) -> list[StoreEntry]:
        """Index records of all profiles matching command/tags.

        Same filter semantics and ordering as :meth:`find` (command
        matches exactly, tags by subset, oldest-first) but returns
        lightweight :class:`StoreEntry` records.  Indexed stores answer
        this without touching profile payloads; this brute-force default
        scans.
        """
        want_command = normalize_command(command) if command is not None else None
        found = [
            StoreEntry(pid, profile.command, profile.tags, profile.created)
            for pid, profile in self._iter_profiles()
            if (want_command is None or profile.command == want_command)
            and tags_match(profile.tags, tags)
        ]
        found.sort(key=lambda entry: entry.created)
        return found

    def ids_for(self, command: object = None, tags: object = None) -> list[str]:
        """Ids of all profiles matching command/tags, oldest-first.

        The public replacement for reaching into ``_iter_profiles``:
        callers that only need identities (ledger bookkeeping, claim GC,
        targeted deletes) get them without payload I/O.
        """
        return [entry.id for entry in self.entries(command, tags)]

    def get_many(self, ids) -> list[Profile]:
        """Profiles for a batch of store ids, in the order given.

        Raises :class:`~repro.core.errors.StoreError` for unknown ids.
        The batch counterpart of id-based lookup: resolve candidates on
        the index plane first, then load only the payloads needed.
        """
        wanted = list(ids)
        missing = set(wanted)
        by_id: dict[str, Profile] = {}
        for pid, profile in self._iter_profiles():
            if pid in missing:
                by_id[pid] = profile
                missing.discard(pid)
                if not missing:
                    break
        if missing:
            raise StoreError(f"no stored profile {sorted(missing)[0]!r}")
        return [by_id[pid] for pid in wanted]

    # -- shared query logic ---------------------------------------------------

    def find(
        self,
        command: object = None,
        tags: object = None,
        query: Mapping[str, Any] | None = None,
    ) -> list[Profile]:
        """All stored profiles matching command, tags and optional query.

        ``command`` matches exactly (after normalisation); ``tags``
        matches by subset; ``query`` is a Mongo-style filter over the
        profile's dict form.  Results are ordered oldest-first.
        """
        return [profile for _pid, profile in self._scan(command, tags, query)]

    def find_ids(
        self,
        command: object = None,
        tags: object = None,
        query: Mapping[str, Any] | None = None,
    ) -> list[str]:
        """Ids of the profiles :meth:`find` would return, in find order."""
        if query is None:
            return self.ids_for(command, tags)
        return [pid for pid, _profile in self._scan(command, tags, query)]

    def _scan(
        self,
        command: object = None,
        tags: object = None,
        query: Mapping[str, Any] | None = None,
    ) -> list[tuple[str, Profile]]:
        """Brute-force reference scan: ``(id, profile)`` in find order.

        The query is compiled once per scan and each candidate's dict
        form is built at most once (reused across every ``$and``/``$or``
        branch of the compiled matcher).
        """
        want_command = normalize_command(command) if command is not None else None
        matcher = compile_query(query) if query is not None else None
        results: list[tuple[str, Profile]] = []
        for pid, profile in self._iter_profiles():
            if want_command is not None and profile.command != want_command:
                continue
            if not tags_match(profile.tags, tags):
                continue
            if matcher is not None and not matcher(profile.to_dict()):
                continue
            results.append((pid, profile))
        results.sort(key=lambda pair: pair[1].created)
        return results

    def get(self, command: object, tags: object = None) -> Profile:
        """The most recent matching profile (raises if none exists).

        Resolved on the index plane: only the winning profile's payload
        is loaded.
        """
        found = self.entries(command, tags)
        if not found:
            raise ProfileNotFoundError(
                f"no profile for command={normalize_command(command)!r} "
                f"tags={normalize_tags(tags)!r}"
            )
        return self.get_many([found[-1].id])[0]

    def count(self) -> int:
        """Number of stored profiles (index plane; no payloads loaded)."""
        return len(self.entries())

    def keys(self) -> list[tuple[str, tuple[str, ...], int]]:
        """Distinct ``(command, tags, n_profiles)`` groups in the store."""
        groups: dict[tuple[str, tuple[str, ...]], int] = {}
        for entry in self.entries():
            key = (entry.command, entry.tags)
            groups[key] = groups.get(key, 0) + 1
        return sorted((cmd, tags, n) for (cmd, tags), n in groups.items())


class MemoryStore(ProfileStore):
    """Volatile store; useful for tests and single-process experiments.

    Maintains a ``(command, tags) -> [ids]`` index alongside the profile
    map, so ``find``/``entries`` prune whole groups before touching any
    profile and ``get_many`` is a dict lookup.  Mutating a profile's
    ``command``/``tags`` *after* ``put`` desyncs the index (as it would
    any database); store a copy instead.
    """

    def __init__(self) -> None:
        self._profiles: dict[str, Profile] = {}
        self._by_key: dict[tuple[str, tuple[str, ...]], list[str]] = {}
        self._next_id = 0

    def put(self, profile: Profile) -> str:
        inject("store.put", key=profile.command)
        with timed("store.put.seconds"):
            pid = f"mem-{self._next_id}"
            self._next_id += 1
            self._profiles[pid] = profile
            self._by_key.setdefault((profile.command, profile.tags), []).append(pid)
        return pid

    def delete(self, pid: str) -> None:
        """Remove one profile by id (missing ids raise ``KeyError``)."""
        profile = self._profiles.pop(pid)
        key = (profile.command, profile.tags)
        ids = self._by_key.get(key)
        if ids is not None:
            try:
                ids.remove(pid)
            except ValueError:
                pass
            if not ids:
                del self._by_key[key]

    def clear(self) -> None:
        """Remove all stored profiles."""
        self._profiles.clear()
        self._by_key.clear()

    def _iter_profiles(self):
        yield from self._profiles.items()

    # -- indexed fast paths ---------------------------------------------------

    def _candidate_ids(self, command: object, tags: object) -> list[str]:
        """Ids of the groups matching command/tags, in insertion order."""
        want_command = normalize_command(command) if command is not None else None
        wanted = set(normalize_tags(tags))
        candidates: list[str] = []
        for (cmd, tgs), ids in self._by_key.items():
            if want_command is not None and cmd != want_command:
                continue
            if not wanted <= set(tgs):
                continue
            candidates.extend(ids)
        # Ids encode the global insertion sequence; restoring it keeps
        # equal-``created`` ties ordered exactly like the reference scan.
        candidates.sort(key=lambda pid: int(pid[4:]))
        return candidates

    def entries(
        self, command: object = None, tags: object = None
    ) -> list[StoreEntry]:
        inject("store.entries")
        with timed("store.entries.seconds"):
            found = [
                StoreEntry(pid, p.command, p.tags, p.created)
                for pid in self._candidate_ids(command, tags)
                for p in (self._profiles[pid],)
            ]
            found.sort(key=lambda entry: entry.created)
        return found

    def get_many(self, ids) -> list[Profile]:
        ids = list(ids)
        if ids:
            inject("store.get", key=str(ids[0]))
        with timed("store.get.seconds"):
            try:
                return [self._profiles[pid] for pid in ids]
            except KeyError as exc:
                raise StoreError(f"no stored profile {exc.args[0]!r}") from exc

    def find(
        self,
        command: object = None,
        tags: object = None,
        query: Mapping[str, Any] | None = None,
    ) -> list[Profile]:
        with timed("store.find.seconds"):
            candidates = [
                (pid, self._profiles[pid])
                for pid in self._candidate_ids(command, tags)
            ]
            if query is not None:
                matcher = compile_query(query)
                candidates = [
                    (pid, profile)
                    for pid, profile in candidates
                    if matcher(profile.to_dict())
                ]
            candidates.sort(key=lambda pair: pair[1].created)
        return [profile for _pid, profile in candidates]
