"""Profile persistence: file-based, in-memory and Mongo-like stores.

The paper's profiler writes profiles "on disk or in a MongoDB database"
(§4).  :func:`open_store` resolves a store URL:

* ``memory://``            — volatile in-process store;
* ``file:///some/dir``     — one JSON file per profile (no sample limit);
* ``mongo:///some/file``   — embedded Mongo-like DB (16 MB document limit);
* ``mongo://``             — in-memory Mongo-like DB (still limit-enforcing).

``file://`` URLs accept a ``?durability=fsync`` query — every put is
flushed to stable storage before returning (see
:class:`~repro.storage.filestore.FileStore`).
"""

from __future__ import annotations

from repro.core.errors import StoreError
from repro.storage.base import MemoryStore, ProfileStore, StoreEntry
from repro.storage.filestore import FileStore
from repro.storage.mongostore import MAX_DOCUMENT_BYTES, Collection, MongoLite, MongoStore
from repro.storage.query import compile_query

__all__ = [
    "Collection",
    "FileStore",
    "MAX_DOCUMENT_BYTES",
    "MemoryStore",
    "MongoLite",
    "MongoStore",
    "ProfileStore",
    "StoreEntry",
    "compile_query",
    "open_store",
]


def open_store(url: str) -> ProfileStore:
    """Open a profile store from a URL string (see module docstring)."""
    if url == "memory://":
        return MemoryStore()
    if url.startswith("file://"):
        path = url[len("file://"):]
        durability = "default"
        if "?" in path:
            path, _, query = path.partition("?")
            if query.startswith("durability="):
                durability = query[len("durability="):]
            elif query:
                raise StoreError(f"unknown file:// store option {query!r}")
        if not path:
            raise StoreError("file:// store needs a directory path")
        return FileStore(path, durability=durability)
    if url.startswith("mongo://"):
        path = url[len("mongo://"):]
        db = MongoLite(path or None)
        return MongoStore(db)
    raise StoreError(f"unknown store url {url!r}")
