"""Embedded Mongo-like document database and the profile store on top.

The original Synapse pushes profiles into MongoDB.  Networked MongoDB is
not available here, so this module implements a small, faithful stand-in:

* :class:`MongoLite` — a database of named collections of JSON documents
  with Mongo-style queries (see :mod:`repro.storage.query`), optional
  file persistence, and — crucially — **MongoDB's 16 MB per-document
  limit**.  The paper calls this limit out explicitly (§4.5): it caps the
  number of samples a profile can hold and caused the largest E.1
  configuration to lose a sample.
* :class:`Collection` — supports **equality indexes**
  (:meth:`Collection.create_index`): a ``value -> [doc ids]`` map per
  indexed field, multikey over arrays exactly like MongoDB's array
  indexes, maintained on every insert/delete/replace.  **TTL indexes**
  (:meth:`Collection.create_ttl_index`) mirror MongoDB's
  ``expireAfterSeconds``: documents whose timestamp field has aged past
  the horizon are expired server-side — here by a throttled lazy sweep
  on the read paths instead of a background thread — optionally scoped
  by a ``match`` query (the shape of a partial/filtered TTL index), so
  claim/lease *markers* expire without ever touching real profiles in
  the same collection.
* :class:`MongoStore` — the :class:`~repro.storage.base.ProfileStore`
  backed by a ``MongoLite`` collection.  It creates indexes on
  ``command`` and ``tags`` (the paper's §4 search keys); because the
  tags index is multikey over the full tag strings, campaign-ledger
  lookups by ``campaign=``/``claim=``/``cell=`` tags and tag-prefix
  scans resolve to index walks instead of collection scans, and query
  matching runs on the raw stored documents — profiles are only
  deserialised for confirmed matches.  When a profile document exceeds
  the size limit the store truncates trailing samples until it fits and
  flags the stored profile ``truncated`` (strict mode raises instead).
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.core.errors import DocumentTooLargeError, StoreError
from repro.core.samples import Profile
from repro.core.tags import normalize_command, normalize_tags
from repro.storage.base import ProfileStore, StoreEntry
from repro.storage.query import compile_query
from repro.telemetry.metrics import timed

__all__ = [
    "MongoLite",
    "Collection",
    "MongoStore",
    "MAX_DOCUMENT_BYTES",
    "TTL_SWEEP_INTERVAL",
]

#: MongoDB's BSON document size limit (16 MB), as cited by the paper.
MAX_DOCUMENT_BYTES = 16 * 1024 * 1024

#: Minimum seconds between lazy TTL sweeps of one collection.  Real
#: MongoDB's TTL monitor runs every 60 s; reads here are the trigger
#: instead of a background thread, so the throttle keeps hot read loops
#: from re-scanning the collection on every call.
TTL_SWEEP_INTERVAL = 1.0


def document_bytes(document: Mapping[str, Any]) -> int:
    """Serialised size of a document (JSON stands in for BSON)."""
    return len(json.dumps(document).encode("utf-8"))


def _index_keys(value: Any) -> list[Any]:
    """Hashable index keys of one field value (multikey over arrays)."""
    if isinstance(value, (list, tuple)):
        items = value
    else:
        items = (value,)
    keys = []
    for item in items:
        try:
            hash(item)
        except TypeError:
            continue
        keys.append(item)
    return keys


class Collection:
    """One named collection of documents inside a :class:`MongoLite`."""

    def __init__(self, name: str, limit_bytes: int = MAX_DOCUMENT_BYTES) -> None:
        self.name = name
        self.limit_bytes = limit_bytes
        self._docs: dict[int, dict[str, Any]] = {}
        self._next_id = 0
        #: field -> value -> [doc ids] (insertion order preserved).
        self._indexes: dict[str, dict[Any, list[Any]]] = {}
        #: field -> [doc ids] whose value could not be hashed; always
        #: included in candidate sets so indexing never loses documents.
        self._unindexable: dict[str, list[Any]] = {}
        #: TTL index configs: ``{"field", "expire_after", "match"}``.
        self._ttls: list[dict[str, Any]] = []
        self._ttl_next_sweep = 0.0

    # -- indexes --------------------------------------------------------------

    def create_index(self, field: str) -> None:
        """Maintain an equality index on a top-level field.

        Array values are indexed per element (MongoDB's multikey
        behaviour) — exactly what profile ``tags`` need.  Idempotent.
        """
        if field in self._indexes:
            return
        self._indexes[field] = {}
        self._unindexable[field] = []
        for doc_id, doc in self._docs.items():
            self._index_field(field, doc_id, doc)

    def create_ttl_index(
        self,
        field: str,
        expire_after: float,
        match: Mapping[str, Any] | None = None,
    ) -> None:
        """Expire documents whose ``field`` timestamp ages past a horizon.

        MongoDB's ``expireAfterSeconds`` semantics: a document is doomed
        once ``doc[field] + expire_after <= now`` (``field`` holding unix
        seconds; documents without a numeric value never expire — exactly
        like documents missing the indexed date field in Mongo).
        ``match`` scopes eligibility the way a partial/filtered TTL index
        does — here it keeps expiry to *marker* documents (claims,
        leases, heartbeats) sharing a collection with real profiles.

        Expiry is lazy: read paths sweep at most once per
        :data:`TTL_SWEEP_INTERVAL`; :meth:`expire_now` forces one.
        Idempotent per ``(field, match)`` — a repeat call updates the
        horizon.
        """
        match = dict(match) if match else None
        key = (field, json.dumps(match, sort_keys=True) if match else None)
        for ttl in self._ttls:
            existing = (
                ttl["field"],
                json.dumps(ttl["match"], sort_keys=True) if ttl["match"] else None,
            )
            if existing == key:
                ttl["expire_after"] = float(expire_after)
                return
        self._ttls.append(
            {"field": field, "expire_after": float(expire_after), "match": match}
        )

    def expire_now(self) -> int:
        """Sweep every TTL index immediately; returns documents removed."""
        removed = 0
        now = time.time()
        for ttl in self._ttls:
            horizon = now - ttl["expire_after"]
            eligible = compile_query(ttl["match"]) if ttl["match"] else None
            field = ttl["field"]
            doomed = [
                doc_id
                for doc_id, doc in self._docs.items()
                if isinstance(doc.get(field), (int, float))
                and doc[field] <= horizon
                and (eligible is None or eligible(doc))
            ]
            for doc_id in doomed:
                self._index_remove(doc_id, self._docs[doc_id])
                del self._docs[doc_id]
            removed += len(doomed)
        self._ttl_next_sweep = time.monotonic() + TTL_SWEEP_INTERVAL
        return removed

    def _maybe_expire(self) -> None:
        if not self._ttls or time.monotonic() < self._ttl_next_sweep:
            return
        self.expire_now()

    def _index_add(self, doc_id: Any, doc: Mapping[str, Any]) -> None:
        for field in self._indexes:
            self._index_field(field, doc_id, doc)

    def _index_field(self, field: str, doc_id: Any, doc: Mapping[str, Any]) -> None:
        if field not in doc:
            return
        value = doc[field]
        keys = _index_keys(value)
        if not keys and not isinstance(value, (list, tuple)):
            self._unindexable[field].append(doc_id)
            return
        if isinstance(value, (list, tuple)) and len(keys) != len(value):
            self._unindexable[field].append(doc_id)
        index = self._indexes[field]
        for key in keys:
            index.setdefault(key, []).append(doc_id)

    def _index_remove(self, doc_id: Any, doc: Mapping[str, Any]) -> None:
        for field, index in self._indexes.items():
            if field not in doc:
                continue
            for key in _index_keys(doc[field]):
                ids = index.get(key)
                if ids is None:
                    continue
                try:
                    ids.remove(doc_id)
                except ValueError:
                    pass
                if not ids:
                    del index[key]
            unhashed = self._unindexable[field]
            if doc_id in unhashed:
                unhashed.remove(doc_id)

    def ids_with(self, field: str, value: Any) -> list[Any] | None:
        """Doc ids whose indexed ``field`` equals/contains ``value``.

        Returns ``None`` when no index exists on ``field`` (caller must
        scan).  Ids come back in insertion order, plus any documents the
        index could not cover.
        """
        self._maybe_expire()
        index = self._indexes.get(field)
        if index is None:
            return None
        ids = list(index.get(value, ()))
        ids.extend(self._unindexable.get(field, ()))
        return ids

    def index_values(self, field: str, prefix: str = "") -> list[Any]:
        """Distinct indexed values of ``field`` (optionally by string
        prefix) without touching any document — the tag-prefix lookup
        behind ``claim=``/``cell=`` ledger scans."""
        self._maybe_expire()
        index = self._indexes.get(field)
        if index is None:
            raise StoreError(f"no index on field {field!r} of {self.name!r}")
        if not prefix:
            return list(index)
        return [
            value
            for value in index
            if isinstance(value, str) and value.startswith(prefix)
        ]

    def ids(self) -> list[Any]:
        """All document ids, in insertion order."""
        self._maybe_expire()
        return list(self._docs)

    def document(self, doc_id: Any) -> dict[str, Any] | None:
        """The raw stored document for one id (``None`` when absent).

        Returns the internal object for speed; callers must not mutate.
        """
        return self._docs.get(doc_id)

    # -- writes ---------------------------------------------------------------

    def insert_one(self, document: Mapping[str, Any]) -> int:
        """Insert a document; returns its ``_id``.

        Raises :class:`DocumentTooLargeError` when the serialised document
        exceeds the per-document limit (MongoDB behaviour).
        """
        doc = dict(document)
        size = document_bytes(doc)
        if size > self.limit_bytes:
            raise DocumentTooLargeError(
                f"document of {size} bytes exceeds the "
                f"{self.limit_bytes}-byte limit of collection {self.name!r}"
            )
        doc_id = doc.setdefault("_id", self._next_id)
        if doc_id in self._docs:
            raise StoreError(f"duplicate _id {doc_id!r} in collection {self.name!r}")
        self._next_id = max(self._next_id, int(doc_id) + 1) if isinstance(doc_id, int) else self._next_id + 1
        self._docs[doc_id] = doc
        self._index_add(doc_id, doc)
        return doc_id

    def insert_many(self, documents) -> list[int]:
        """Insert several documents; returns their ids."""
        return [self.insert_one(doc) for doc in documents]

    def delete_many(self, query: Mapping[str, Any] | None = None) -> int:
        """Delete matching documents; returns the number removed."""
        match = compile_query(query)
        doomed = [doc_id for doc_id, doc in self._docs.items() if match(doc)]
        for doc_id in doomed:
            self._index_remove(doc_id, self._docs[doc_id])
            del self._docs[doc_id]
        return len(doomed)

    def replace_one(self, query: Mapping[str, Any], document: Mapping[str, Any]) -> bool:
        """Replace the first matching document; returns True if replaced."""
        match = compile_query(query)
        for doc_id, doc in self._docs.items():
            if match(doc):
                new_doc = dict(document)
                new_doc["_id"] = doc_id
                size = document_bytes(new_doc)
                if size > self.limit_bytes:
                    raise DocumentTooLargeError(
                        f"replacement document of {size} bytes exceeds the limit"
                    )
                self._index_remove(doc_id, doc)
                self._docs[doc_id] = new_doc
                self._index_add(doc_id, new_doc)
                return True
        return False

    # -- reads ------------------------------------------------------------------

    def find(self, query: Mapping[str, Any] | None = None) -> list[dict[str, Any]]:
        """All documents matching the Mongo-style query (insertion order)."""
        self._maybe_expire()
        match = compile_query(query)
        return [dict(doc) for doc in self._docs.values() if match(doc)]

    def find_one(self, query: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        """First matching document or ``None``."""
        self._maybe_expire()
        match = compile_query(query)
        for doc in self._docs.values():
            if match(doc):
                return dict(doc)
        return None

    def count_documents(self, query: Mapping[str, Any] | None = None) -> int:
        """Number of matching documents."""
        self._maybe_expire()
        match = compile_query(query)
        return sum(1 for doc in self._docs.values() if match(doc))

    def distinct(self, path: str) -> list[Any]:
        """Distinct values of a (dotted) field across all documents."""
        from repro.storage.query import get_path, _MISSING  # noqa: PLC0415

        seen: list[Any] = []
        for doc in self._docs.values():
            value = get_path(doc, path)
            if value is not _MISSING and value not in seen:
                seen.append(value)
        return seen

    # -- persistence ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialisable snapshot of the collection."""
        snapshot: dict[str, Any] = {
            "name": self.name,
            "limit_bytes": self.limit_bytes,
            "docs": list(self._docs.values()),
            "next_id": self._next_id,
        }
        if self._ttls:
            snapshot["ttls"] = [dict(ttl) for ttl in self._ttls]
        return snapshot

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Collection":
        """Inverse of :meth:`to_dict`."""
        coll = cls(data["name"], int(data.get("limit_bytes", MAX_DOCUMENT_BYTES)))
        for doc in data.get("docs", []):
            coll._docs[doc["_id"]] = dict(doc)
        coll._next_id = int(data.get("next_id", len(coll._docs)))
        for ttl in data.get("ttls", []):
            coll.create_ttl_index(
                str(ttl["field"]), float(ttl["expire_after"]), ttl.get("match")
            )
        return coll


class MongoLite:
    """A tiny document database: named collections + optional persistence.

    ``path=None`` keeps everything in memory; otherwise :meth:`dump` /
    :meth:`load` round-trip the whole database through one JSON file.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        limit_bytes: int = MAX_DOCUMENT_BYTES,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.limit_bytes = limit_bytes
        self._collections: dict[str, Collection] = {}
        if self.path is not None and self.path.exists():
            self.load()

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if name not in self._collections:
            self._collections[name] = Collection(name, self.limit_bytes)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> list[str]:
        """Names of all existing collections."""
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        """Remove a collection entirely (no-op when absent)."""
        self._collections.pop(name, None)

    def dump(self) -> None:
        """Persist the database to ``self.path`` (no-op when in-memory)."""
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {name: coll.to_dict() for name, coll in self._collections.items()}
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)

    def load(self) -> None:
        """Load the database from ``self.path``."""
        if self.path is None or not self.path.exists():
            return
        with open(self.path, encoding="utf-8") as handle:
            payload = json.load(handle)
        self._collections = {
            name: Collection.from_dict(data) for name, data in payload.items()
        }


class MongoStore(ProfileStore):
    """Profile store backed by a :class:`MongoLite` collection.

    Parameters
    ----------
    db:
        Existing database, or ``None`` for a fresh in-memory one.
    limit_bytes:
        Per-document size limit; defaults to MongoDB's 16 MB.
    strict:
        When True, oversized profiles raise
        :class:`DocumentTooLargeError`; when False (default, matching the
        paper's observed behaviour) trailing samples are dropped until the
        document fits and the stored profile is flagged ``truncated``.
    """

    def __init__(
        self,
        db: MongoLite | None = None,
        limit_bytes: int = MAX_DOCUMENT_BYTES,
        strict: bool = False,
    ) -> None:
        self.db = db if db is not None else MongoLite(limit_bytes=limit_bytes)
        self.collection = self.db.collection("profiles")
        self.collection.limit_bytes = limit_bytes
        self.strict = strict
        self.collection.create_index("command")
        self.collection.create_index("tags")

    def put(self, profile: Profile) -> str:
        with timed("store.put.seconds"):
            stored = self._fit(profile)
            doc = stored.to_dict()
            doc_id = self.collection.insert_one(doc)
            self.db.dump()
        return str(doc_id)

    def put_many(self, profiles) -> list[str]:
        """Persist a batch; the database file is dumped once, not per put."""
        with timed("store.put.seconds"):
            ids = [
                str(self.collection.insert_one(self._fit(profile).to_dict()))
                for profile in profiles
            ]
            self.db.dump()
        return ids

    def _fit(self, profile: Profile) -> Profile:
        """Truncate a profile's samples until its document fits the limit."""
        limit = self.collection.limit_bytes
        if profile.document_size() <= limit:
            return profile
        if self.strict:
            raise DocumentTooLargeError(
                f"profile document of {profile.document_size()} bytes exceeds "
                f"the {limit}-byte document limit"
            )
        # Binary-search the largest sample count that still fits.
        low, high = 0, profile.n_samples
        while low < high:
            mid = (low + high + 1) // 2
            if profile.truncate(mid).document_size() <= limit:
                low = mid
            else:
                high = mid - 1
        truncated = profile.truncate(low)
        if truncated.document_size() > limit:
            raise DocumentTooLargeError(
                "profile metadata alone exceeds the document limit"
            )
        return truncated

    def samples_dropped(self, profile: Profile) -> int:
        """How many samples :meth:`put` would drop for this profile."""
        return profile.n_samples - self._fit_count(profile)

    def _fit_count(self, profile: Profile) -> int:
        try:
            return self._fit(profile).n_samples
        except DocumentTooLargeError:
            return 0

    def delete(self, pid: str) -> None:
        """Remove one stored profile by id."""
        removed = self.collection.delete_many({"_id": int(pid)})
        if not removed:
            raise StoreError(f"no stored profile {pid!r}")
        self.db.dump()

    def expire_markers(self, command: object, seconds: float) -> int:
        """Server-side TTL expiry for marker documents of one command.

        Installs (idempotently) a scoped TTL index — ``created`` older
        than ``seconds``, documents whose ``command`` equals the marker
        command — and sweeps immediately, returning the number expired.
        Claim/lease/heartbeat markers stop accumulating between the
        campaign layer's explicit GC passes; real profiles in the same
        collection are untouched.  Later expirations happen lazily on
        the read paths (throttled to :data:`TTL_SWEEP_INTERVAL`).
        """
        marker = normalize_command(command)
        self.collection.create_ttl_index(
            "created", float(seconds), match={"command": marker}
        )
        return self.collection.expire_now()

    # -- indexed fast paths ---------------------------------------------------

    def _candidate_docs(
        self, command: object, tags: object
    ) -> list[tuple[Any, dict[str, Any]]]:
        """``(doc_id, raw doc)`` candidates in insertion order.

        Prunes through the command/tags indexes, then verifies the
        filter on the raw documents (covers multikey false positives and
        unindexable leftovers) — no profile deserialisation.
        """
        want_command = normalize_command(command) if command is not None else None
        wanted = normalize_tags(tags)
        id_lists: list[list[Any]] = []
        if want_command is not None:
            ids = self.collection.ids_with("command", want_command)
            if ids is not None:
                id_lists.append(ids)
        for tag in wanted:
            ids = self.collection.ids_with("tags", tag)
            if ids is not None:
                id_lists.append(ids)
        if id_lists:
            # Walk the rarest list; membership-check the rest.
            id_lists.sort(key=len)
            first, rest = id_lists[0], [set(ids) for ids in id_lists[1:]]
            candidate_ids = [
                doc_id
                for doc_id in dict.fromkeys(first)
                if all(doc_id in other for other in rest)
            ]
        else:
            candidate_ids = self.collection.ids()
        wanted_set = set(wanted)
        candidates: list[tuple[Any, dict[str, Any]]] = []
        for doc_id in candidate_ids:
            doc = self.collection.document(doc_id)
            if doc is None:
                continue
            if want_command is not None and doc.get("command") != want_command:
                continue
            if wanted_set and not wanted_set <= set(doc.get("tags", ())):
                continue
            candidates.append((doc_id, doc))
        return candidates

    def entries(
        self, command: object = None, tags: object = None
    ) -> list[StoreEntry]:
        with timed("store.entries.seconds"):
            found = [
                StoreEntry(
                    str(doc_id),
                    doc["command"],
                    tuple(doc.get("tags", ())),
                    float(doc.get("created", 0.0)),
                )
                for doc_id, doc in self._candidate_docs(command, tags)
            ]
            found.sort(key=lambda entry: entry.created)
        return found

    def get_many(self, ids) -> list[Profile]:
        with timed("store.get.seconds"):
            profiles = []
            for pid in ids:
                try:
                    doc = self.collection.document(int(pid))
                except (TypeError, ValueError):
                    doc = None
                if doc is None:
                    raise StoreError(f"no stored profile {pid!r}")
                profiles.append(Profile.from_dict(doc))
        return profiles

    def find(
        self,
        command: object = None,
        tags: object = None,
        query: Mapping[str, Any] | None = None,
    ) -> list[Profile]:
        with timed("store.find.seconds"):
            matcher = compile_query(query) if query is not None else None
            found: list[tuple[float, int, Profile]] = []
            for position, (doc_id, doc) in enumerate(
                self._candidate_docs(command, tags)
            ):
                if matcher is not None:
                    # Match the raw stored document (minus the store-private
                    # id, mirroring the profile's dict form) — built once per
                    # candidate and reused across every query branch.
                    probe = {key: value for key, value in doc.items() if key != "_id"}
                    if not matcher(probe):
                        continue
                found.append(
                    (float(doc.get("created", 0.0)), position, Profile.from_dict(doc))
                )
            found.sort(key=lambda item: item[:2])
        return [profile for _created, _position, profile in found]

    # -- brute-force reference ------------------------------------------------

    def _iter_profiles(self):
        for doc in self.collection.find():
            doc_id = doc.pop("_id")
            yield str(doc_id), Profile.from_dict(doc)
