"""Embedded Mongo-like document database and the profile store on top.

The original Synapse pushes profiles into MongoDB.  Networked MongoDB is
not available here, so this module implements a small, faithful stand-in:

* :class:`MongoLite` — a database of named collections of JSON documents
  with Mongo-style queries (see :mod:`repro.storage.query`), optional
  file persistence, and — crucially — **MongoDB's 16 MB per-document
  limit**.  The paper calls this limit out explicitly (§4.5): it caps the
  number of samples a profile can hold and caused the largest E.1
  configuration to lose a sample.
* :class:`MongoStore` — the :class:`~repro.storage.base.ProfileStore`
  backed by a ``MongoLite`` collection.  When a profile document exceeds
  the limit the store truncates trailing samples until it fits and flags
  the stored profile ``truncated`` (strict mode raises instead).
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.core.errors import DocumentTooLargeError, StoreError
from repro.core.samples import Profile
from repro.storage.base import ProfileStore
from repro.storage.query import matches

__all__ = ["MongoLite", "Collection", "MongoStore", "MAX_DOCUMENT_BYTES"]

#: MongoDB's BSON document size limit (16 MB), as cited by the paper.
MAX_DOCUMENT_BYTES = 16 * 1024 * 1024


def document_bytes(document: Mapping[str, Any]) -> int:
    """Serialised size of a document (JSON stands in for BSON)."""
    return len(json.dumps(document).encode("utf-8"))


class Collection:
    """One named collection of documents inside a :class:`MongoLite`."""

    def __init__(self, name: str, limit_bytes: int = MAX_DOCUMENT_BYTES) -> None:
        self.name = name
        self.limit_bytes = limit_bytes
        self._docs: dict[int, dict[str, Any]] = {}
        self._next_id = 0

    # -- writes ---------------------------------------------------------------

    def insert_one(self, document: Mapping[str, Any]) -> int:
        """Insert a document; returns its ``_id``.

        Raises :class:`DocumentTooLargeError` when the serialised document
        exceeds the per-document limit (MongoDB behaviour).
        """
        doc = dict(document)
        size = document_bytes(doc)
        if size > self.limit_bytes:
            raise DocumentTooLargeError(
                f"document of {size} bytes exceeds the "
                f"{self.limit_bytes}-byte limit of collection {self.name!r}"
            )
        doc_id = doc.setdefault("_id", self._next_id)
        if doc_id in self._docs:
            raise StoreError(f"duplicate _id {doc_id!r} in collection {self.name!r}")
        self._next_id = max(self._next_id, int(doc_id) + 1) if isinstance(doc_id, int) else self._next_id + 1
        self._docs[doc_id] = doc
        return doc_id

    def insert_many(self, documents) -> list[int]:
        """Insert several documents; returns their ids."""
        return [self.insert_one(doc) for doc in documents]

    def delete_many(self, query: Mapping[str, Any] | None = None) -> int:
        """Delete matching documents; returns the number removed."""
        doomed = [doc_id for doc_id, doc in self._docs.items() if matches(doc, query)]
        for doc_id in doomed:
            del self._docs[doc_id]
        return len(doomed)

    def replace_one(self, query: Mapping[str, Any], document: Mapping[str, Any]) -> bool:
        """Replace the first matching document; returns True if replaced."""
        for doc_id, doc in self._docs.items():
            if matches(doc, query):
                new_doc = dict(document)
                new_doc["_id"] = doc_id
                size = document_bytes(new_doc)
                if size > self.limit_bytes:
                    raise DocumentTooLargeError(
                        f"replacement document of {size} bytes exceeds the limit"
                    )
                self._docs[doc_id] = new_doc
                return True
        return False

    # -- reads ------------------------------------------------------------------

    def find(self, query: Mapping[str, Any] | None = None) -> list[dict[str, Any]]:
        """All documents matching the Mongo-style query (insertion order)."""
        return [dict(doc) for doc in self._docs.values() if matches(doc, query)]

    def find_one(self, query: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        """First matching document or ``None``."""
        for doc in self._docs.values():
            if matches(doc, query):
                return dict(doc)
        return None

    def count_documents(self, query: Mapping[str, Any] | None = None) -> int:
        """Number of matching documents."""
        return sum(1 for doc in self._docs.values() if matches(doc, query))

    def distinct(self, path: str) -> list[Any]:
        """Distinct values of a (dotted) field across all documents."""
        from repro.storage.query import get_path, _MISSING  # noqa: PLC0415

        seen: list[Any] = []
        for doc in self._docs.values():
            value = get_path(doc, path)
            if value is not _MISSING and value not in seen:
                seen.append(value)
        return seen

    # -- persistence ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialisable snapshot of the collection."""
        return {"name": self.name, "limit_bytes": self.limit_bytes, "docs": list(self._docs.values()), "next_id": self._next_id}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Collection":
        """Inverse of :meth:`to_dict`."""
        coll = cls(data["name"], int(data.get("limit_bytes", MAX_DOCUMENT_BYTES)))
        for doc in data.get("docs", []):
            coll._docs[doc["_id"]] = dict(doc)
        coll._next_id = int(data.get("next_id", len(coll._docs)))
        return coll


class MongoLite:
    """A tiny document database: named collections + optional persistence.

    ``path=None`` keeps everything in memory; otherwise :meth:`dump` /
    :meth:`load` round-trip the whole database through one JSON file.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        limit_bytes: int = MAX_DOCUMENT_BYTES,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.limit_bytes = limit_bytes
        self._collections: dict[str, Collection] = {}
        if self.path is not None and self.path.exists():
            self.load()

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if name not in self._collections:
            self._collections[name] = Collection(name, self.limit_bytes)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> list[str]:
        """Names of all existing collections."""
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        """Remove a collection entirely (no-op when absent)."""
        self._collections.pop(name, None)

    def dump(self) -> None:
        """Persist the database to ``self.path`` (no-op when in-memory)."""
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {name: coll.to_dict() for name, coll in self._collections.items()}
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)

    def load(self) -> None:
        """Load the database from ``self.path``."""
        if self.path is None or not self.path.exists():
            return
        with open(self.path, encoding="utf-8") as handle:
            payload = json.load(handle)
        self._collections = {
            name: Collection.from_dict(data) for name, data in payload.items()
        }


class MongoStore(ProfileStore):
    """Profile store backed by a :class:`MongoLite` collection.

    Parameters
    ----------
    db:
        Existing database, or ``None`` for a fresh in-memory one.
    limit_bytes:
        Per-document size limit; defaults to MongoDB's 16 MB.
    strict:
        When True, oversized profiles raise
        :class:`DocumentTooLargeError`; when False (default, matching the
        paper's observed behaviour) trailing samples are dropped until the
        document fits and the stored profile is flagged ``truncated``.
    """

    def __init__(
        self,
        db: MongoLite | None = None,
        limit_bytes: int = MAX_DOCUMENT_BYTES,
        strict: bool = False,
    ) -> None:
        self.db = db if db is not None else MongoLite(limit_bytes=limit_bytes)
        self.collection = self.db.collection("profiles")
        self.collection.limit_bytes = limit_bytes
        self.strict = strict

    def put(self, profile: Profile) -> str:
        stored = self._fit(profile)
        doc = stored.to_dict()
        doc_id = self.collection.insert_one(doc)
        self.db.dump()
        return str(doc_id)

    def _fit(self, profile: Profile) -> Profile:
        """Truncate a profile's samples until its document fits the limit."""
        limit = self.collection.limit_bytes
        if profile.document_size() <= limit:
            return profile
        if self.strict:
            raise DocumentTooLargeError(
                f"profile document of {profile.document_size()} bytes exceeds "
                f"the {limit}-byte document limit"
            )
        # Binary-search the largest sample count that still fits.
        low, high = 0, profile.n_samples
        while low < high:
            mid = (low + high + 1) // 2
            if profile.truncate(mid).document_size() <= limit:
                low = mid
            else:
                high = mid - 1
        truncated = profile.truncate(low)
        if truncated.document_size() > limit:
            raise DocumentTooLargeError(
                "profile metadata alone exceeds the document limit"
            )
        return truncated

    def samples_dropped(self, profile: Profile) -> int:
        """How many samples :meth:`put` would drop for this profile."""
        return profile.n_samples - self._fit_count(profile)

    def _fit_count(self, profile: Profile) -> int:
        try:
            return self._fit(profile).n_samples
        except DocumentTooLargeError:
            return 0

    def delete(self, pid: str) -> None:
        """Remove one stored profile by id."""
        removed = self.collection.delete_many({"_id": int(pid)})
        if not removed:
            raise StoreError(f"no stored profile {pid!r}")
        self.db.dump()

    def _iter_profiles(self):
        for doc in self.collection.find():
            doc_id = doc.pop("_id")
            yield str(doc_id), Profile.from_dict(doc)
