"""Mongo-style document query matching.

The paper stores profiles in MongoDB and looks them up by command/tag.
Our embedded store reproduces the query surface actually needed (plus the
common operators) so code written against the original ``pymongo`` usage
ports over directly:

* implicit equality: ``{"command": "gmx mdrun"}``
* comparison: ``$eq $ne $gt $gte $lt $lte``
* membership: ``$in $nin``
* arrays: ``$all $size $elemMatch`` and Mongo's "scalar query matches
  array element"
* strings: ``$regex``
* existence: ``$exists``
* logic: ``$and $or $nor $not``
* dotted paths: ``{"machine.name": "thinkie"}``

Queries are *compiled* before matching: :func:`compile_query` pre-resolves
the operator tree into a matcher closure — ``$regex`` patterns are
``re.compile``\\ d once, dotted paths are pre-split, sub-queries of
``$and``/``$or``/``$nor``/``$elemMatch`` are compiled recursively — so a
store ``find()`` pays query parsing once per call instead of once per
candidate document.  :func:`matches` stays as the one-shot convenience
wrapper with identical semantics.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Mapping, Sequence
from typing import Any

__all__ = ["compile_query", "matches", "get_path"]

_MISSING = object()


def get_path(document: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted path inside nested mappings (``_MISSING`` if absent).

    Nested traversal is tried first; when a segment does not resolve, the
    longer literal joins are tried, so profile documents' dotted metric
    keys remain addressable (``"values.cpu.instructions"`` finds both
    ``{"values": {"cpu": {"instructions": 1}}}`` and the stored-sample
    shape ``{"values": {"cpu.instructions": 1}}``).
    """
    return _walk_path(document, path.split("."))


def _walk_path(node: Any, parts: list[str]) -> Any:
    if not parts:
        return node
    if isinstance(node, Mapping):
        for cut in range(1, len(parts) + 1):
            key = ".".join(parts[:cut])
            if key in node:
                found = _walk_path(node[key], parts[cut:])
                if found is not _MISSING:
                    return found
        return _MISSING
    if isinstance(node, Sequence) and not isinstance(node, (str, bytes)):
        try:
            return _walk_path(node[int(parts[0])], parts[1:])
        except (ValueError, IndexError):
            return _MISSING
    return _MISSING


def _is_operator_doc(value: Any) -> bool:
    return isinstance(value, Mapping) and value and all(
        isinstance(k, str) and k.startswith("$") for k in value
    )


def _compare(op: str, actual: Any, expected: Any) -> bool:
    try:
        if op == "$eq":
            return _value_matches(actual, expected)
        if op == "$ne":
            return not _value_matches(actual, expected)
        if op == "$gt":
            return actual is not _MISSING and actual > expected
        if op == "$gte":
            return actual is not _MISSING and actual >= expected
        if op == "$lt":
            return actual is not _MISSING and actual < expected
        if op == "$lte":
            return actual is not _MISSING and actual <= expected
    except TypeError:
        return False
    raise ValueError(f"unknown comparison operator {op!r}")


def _value_matches(actual: Any, expected: Any) -> bool:
    """Mongo equality: direct equality, or array-contains for sequences."""
    if actual is _MISSING:
        return expected is None
    if actual == expected:
        return True
    if isinstance(actual, Sequence) and not isinstance(actual, (str, bytes)):
        return any(item == expected for item in actual)
    return False


def _is_array(value: Any) -> bool:
    return isinstance(value, Sequence) and not isinstance(value, (str, bytes))


def _compile_operators(ops: Mapping[str, Any]) -> Callable[[Any], bool]:
    """Compile an operator document into a predicate over the field value."""
    tests: list[Callable[[Any], bool]] = []
    for op, arg in ops.items():
        if op in ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte"):
            tests.append(lambda actual, op=op, arg=arg: _compare(op, actual, arg))
        elif op == "$in":
            choices = list(arg)
            tests.append(
                lambda actual, choices=choices: any(
                    _value_matches(actual, item) for item in choices
                )
            )
        elif op == "$nin":
            choices = list(arg)
            tests.append(
                lambda actual, choices=choices: not any(
                    _value_matches(actual, item) for item in choices
                )
            )
        elif op == "$exists":
            want = bool(arg)
            tests.append(lambda actual, want=want: want == (actual is not _MISSING))
        elif op == "$regex":
            rx = re.compile(arg)
            tests.append(
                lambda actual, rx=rx: isinstance(actual, str)
                and rx.search(actual) is not None
            )
        elif op == "$all":
            needed = list(arg)
            tests.append(
                lambda actual, needed=needed: _is_array(actual)
                and all(item in actual for item in needed)
            )
        elif op == "$size":
            tests.append(
                lambda actual, size=arg: _is_array(actual) and len(actual) == size
            )
        elif op == "$elemMatch":
            if not isinstance(arg, Mapping) or not arg:
                raise ValueError("$elemMatch takes a non-empty query document")
            if _is_operator_doc(arg):
                # Operator form: some element satisfies all operators.
                inner_ops = _compile_operators(arg)
                tests.append(
                    lambda actual, inner=inner_ops: _is_array(actual)
                    and any(inner(item) for item in actual)
                )
            else:
                # Document form: some element is a document matching the
                # full sub-query (Mongo's array-of-documents case).
                sub = compile_query(arg)
                tests.append(
                    lambda actual, sub=sub: _is_array(actual)
                    and any(
                        isinstance(item, Mapping) and sub(item) for item in actual
                    )
                )
        elif op == "$not":
            inner = _compile_operators(arg if _is_operator_doc(arg) else {"$eq": arg})
            tests.append(lambda actual, inner=inner: not inner(actual))
        else:
            raise ValueError(f"unsupported query operator {op!r}")
    if len(tests) == 1:
        return tests[0]
    return lambda actual: all(test(actual) for test in tests)


def compile_query(
    query: Mapping[str, Any] | None,
) -> Callable[[Mapping[str, Any]], bool]:
    """Compile ``query`` into a reusable ``document -> bool`` matcher.

    Invalid queries (unknown operators, malformed ``$elemMatch``) raise
    ``ValueError`` at compile time; the returned closure itself never
    parses the query again, making it the right shape for store scans
    that test one query against many documents.
    """
    if not query:
        return lambda document: True
    preds: list[Callable[[Mapping[str, Any]], bool]] = []
    for key, condition in query.items():
        if key == "$and":
            subs = [compile_query(sub) for sub in condition]
            preds.append(lambda doc, subs=subs: all(sub(doc) for sub in subs))
        elif key == "$or":
            subs = [compile_query(sub) for sub in condition]
            preds.append(lambda doc, subs=subs: any(sub(doc) for sub in subs))
        elif key == "$nor":
            subs = [compile_query(sub) for sub in condition]
            preds.append(lambda doc, subs=subs: not any(sub(doc) for sub in subs))
        elif key.startswith("$"):
            raise ValueError(f"unsupported top-level operator {key!r}")
        else:
            parts = key.split(".")
            if _is_operator_doc(condition):
                ops = _compile_operators(condition)
                preds.append(
                    lambda doc, parts=parts, ops=ops: ops(_walk_path(doc, parts))
                )
            else:
                preds.append(
                    lambda doc, parts=parts, expected=condition: _value_matches(
                        _walk_path(doc, parts), expected
                    )
                )
    if len(preds) == 1:
        return preds[0]
    return lambda document: all(pred(document) for pred in preds)


def matches(document: Mapping[str, Any], query: Mapping[str, Any] | None) -> bool:
    """True when ``document`` satisfies ``query`` (``None``/{} match all).

    One-shot convenience over :func:`compile_query`; callers testing one
    query against many documents should compile once instead.
    """
    return compile_query(query)(document)
