"""Mongo-style document query matching.

The paper stores profiles in MongoDB and looks them up by command/tag.
Our embedded store reproduces the query surface actually needed (plus the
common operators) so code written against the original ``pymongo`` usage
ports over directly:

* implicit equality: ``{"command": "gmx mdrun"}``
* comparison: ``$eq $ne $gt $gte $lt $lte``
* membership: ``$in $nin``
* arrays: ``$all $size $elemMatch`` and Mongo's "scalar query matches
  array element"
* strings: ``$regex``
* existence: ``$exists``
* logic: ``$and $or $nor $not``
* dotted paths: ``{"machine.name": "thinkie"}``
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence
from typing import Any

__all__ = ["matches", "get_path"]

_MISSING = object()


def get_path(document: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted path inside nested mappings (``_MISSING`` if absent).

    Nested traversal is tried first; when a segment does not resolve, the
    longer literal joins are tried, so profile documents' dotted metric
    keys remain addressable (``"values.cpu.instructions"`` finds both
    ``{"values": {"cpu": {"instructions": 1}}}`` and the stored-sample
    shape ``{"values": {"cpu.instructions": 1}}``).
    """
    return _walk_path(document, path.split("."))


def _walk_path(node: Any, parts: list[str]) -> Any:
    if not parts:
        return node
    if isinstance(node, Mapping):
        for cut in range(1, len(parts) + 1):
            key = ".".join(parts[:cut])
            if key in node:
                found = _walk_path(node[key], parts[cut:])
                if found is not _MISSING:
                    return found
        return _MISSING
    if isinstance(node, Sequence) and not isinstance(node, (str, bytes)):
        try:
            return _walk_path(node[int(parts[0])], parts[1:])
        except (ValueError, IndexError):
            return _MISSING
    return _MISSING


def _is_operator_doc(value: Any) -> bool:
    return isinstance(value, Mapping) and value and all(
        isinstance(k, str) and k.startswith("$") for k in value
    )


def _compare(op: str, actual: Any, expected: Any) -> bool:
    try:
        if op == "$eq":
            return _value_matches(actual, expected)
        if op == "$ne":
            return not _value_matches(actual, expected)
        if op == "$gt":
            return actual is not _MISSING and actual > expected
        if op == "$gte":
            return actual is not _MISSING and actual >= expected
        if op == "$lt":
            return actual is not _MISSING and actual < expected
        if op == "$lte":
            return actual is not _MISSING and actual <= expected
    except TypeError:
        return False
    raise ValueError(f"unknown comparison operator {op!r}")


def _value_matches(actual: Any, expected: Any) -> bool:
    """Mongo equality: direct equality, or array-contains for sequences."""
    if actual is _MISSING:
        return expected is None
    if actual == expected:
        return True
    if isinstance(actual, Sequence) and not isinstance(actual, (str, bytes)):
        return any(item == expected for item in actual)
    return False


def _apply_operators(actual: Any, ops: Mapping[str, Any]) -> bool:
    for op, arg in ops.items():
        if op in ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte"):
            if not _compare(op, actual, arg):
                return False
        elif op == "$in":
            if not any(_value_matches(actual, item) for item in arg):
                return False
        elif op == "$nin":
            if any(_value_matches(actual, item) for item in arg):
                return False
        elif op == "$exists":
            if bool(arg) != (actual is not _MISSING):
                return False
        elif op == "$regex":
            if actual is _MISSING or not isinstance(actual, str):
                return False
            if re.search(arg, actual) is None:
                return False
        elif op == "$all":
            if not isinstance(actual, Sequence) or isinstance(actual, (str, bytes)):
                return False
            if not all(item in actual for item in arg):
                return False
        elif op == "$size":
            if not isinstance(actual, Sequence) or isinstance(actual, (str, bytes)):
                return False
            if len(actual) != arg:
                return False
        elif op == "$elemMatch":
            if not isinstance(arg, Mapping) or not arg:
                raise ValueError("$elemMatch takes a non-empty query document")
            if not isinstance(actual, Sequence) or isinstance(actual, (str, bytes)):
                return False
            if _is_operator_doc(arg):
                # Operator form: some element satisfies all operators.
                if not any(_apply_operators(item, arg) for item in actual):
                    return False
            else:
                # Document form: some element is a document matching the
                # full sub-query (Mongo's array-of-documents case).
                if not any(
                    isinstance(item, Mapping) and matches(item, arg)
                    for item in actual
                ):
                    return False
        elif op == "$not":
            inner = arg if _is_operator_doc(arg) else {"$eq": arg}
            if _apply_operators(actual, inner):
                return False
        else:
            raise ValueError(f"unsupported query operator {op!r}")
    return True


def matches(document: Mapping[str, Any], query: Mapping[str, Any] | None) -> bool:
    """True when ``document`` satisfies ``query`` (``None``/{} match all)."""
    if not query:
        return True
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise ValueError(f"unsupported top-level operator {key!r}")
        else:
            actual = get_path(document, key)
            if _is_operator_doc(condition):
                if not _apply_operators(actual, condition):
                    return False
            else:
                if not _value_matches(actual, condition):
                    return False
    return True
