"""Process-wide metrics: counters, gauges and latency histograms.

Unlike the event bus — which is dark until a sink is attached — the
metrics registry is always on: a counter bump or histogram observation
is a couple of dict operations, cheap enough for the store and service
hot paths, and the accumulated aggregates are what the benchmark
harness folds into its committed ``BENCH_*.json`` results (per-request
p50/p99 latency, pool utilization) without any sink plumbing.

Histograms keep exact ``count``/``sum``/``min``/``max`` plus a bounded
reservoir of the most recent observations for percentile estimates —
memory-bounded no matter how many requests a long campaign pushes
through.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "HistogramStat",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "timed",
]

#: Recent observations kept per histogram for percentile estimates.
RESERVOIR_SIZE = 4096


@dataclass(frozen=True)
class HistogramStat:
    """Aggregate view of one histogram at snapshot time."""

    count: int
    sum: float
    min: float
    max: float
    #: Most recent observations (up to :data:`RESERVOIR_SIZE`).
    recent: tuple[float, ...]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (``q`` in 0..100)."""
        if not self.recent:
            return 0.0
        ordered = sorted(self.recent)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms."""

    def __init__(self, reservoir: int = RESERVOIR_SIZE) -> None:
        self._reservoir = reservoir
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, sum, min, max, deque(recent)]
        self._hists: dict[str, list[Any]] = {}

    # -- writes -------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        value = float(value)
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = [1, value, value, value,
                                     deque([value], maxlen=self._reservoir)]
                return
            hist[0] += 1
            hist[1] += value
            if value < hist[2]:
                hist[2] = value
            if value > hist[3]:
                hist[3] = value
            hist[4].append(value)

    # -- reads --------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> HistogramStat | None:
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                return None
            return HistogramStat(hist[0], hist[1], hist[2], hist[3], tuple(hist[4]))

    def names(self) -> dict[str, list[str]]:
        """Registered metric names by family."""
        with self._lock:
            return {
                "counters": sorted(self._counters),
                "gauges": sorted(self._gauges),
                "histograms": sorted(self._hists),
            }

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every metric's current aggregate."""
        with self._lock:
            hists = {
                name: HistogramStat(h[0], h[1], h[2], h[3], tuple(h[4]))
                for name, h in self._hists.items()
            }
            counters = dict(self._counters)
            gauges = dict(self._gauges)
        return {
            "counters": {name: counters[name] for name in sorted(counters)},
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "histograms": {
                name: hists[name].to_dict() for name in sorted(hists)
            },
        }

    def reset(self) -> None:
        """Drop every metric (tests, benchmark phase boundaries)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def reset_registry() -> None:
    """Clear the process-wide registry (tests, benchmarks)."""
    _registry.reset()


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Observe the block's wall-clock seconds into histogram ``name``.

    The storage plane's one-liner instrumentation:
    ``with timed("store.put.seconds"): ...``.
    """
    t0 = perf_counter()
    try:
        yield
    finally:
        _registry.observe(name, perf_counter() - t0)
