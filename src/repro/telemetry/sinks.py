"""Pluggable event sinks: log lines, JSONL files, memory, Chrome traces.

Sinks implement ``handle(event)`` plus an optional ``close()``; the
:class:`~repro.telemetry.events.EventBus` guards every call, so a
broken sink degrades telemetry, never the instrumented run.

* :class:`LogSink` — human-readable or JSONL lines to a stream
  (the CLI's ``--log-level`` / ``--log-json``);
* :class:`JsonlSink` — every event as one JSON line in a file;
* :class:`MemorySink` — in-memory buffer with query helpers (tests);
* :class:`TraceSink` — collects span/instant events and writes a
  Chrome-trace JSON on close (the CLI's ``--trace FILE``), via
  :func:`repro.export.trace.events_to_trace` so runtime traces open in
  ``about://tracing`` next to the simulated timelines the export plane
  already produces.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Any, Iterable

from repro.telemetry.events import Event, level_number

__all__ = ["JsonlSink", "LogSink", "MemorySink", "TraceSink"]


class LogSink:
    """Format events as log lines on a text stream (stderr by default).

    ``json_lines=True`` switches from the human format to one JSON
    document per line (each the event's ``to_dict`` form) — parseable
    with ``json.loads`` per line, which is what the CI smoke asserts.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        level: str = "info",
        json_lines: bool = False,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.threshold = level_number(level)
        self.json_lines = json_lines

    def handle(self, event: Event) -> None:
        if level_number(event.level) < self.threshold:
            return
        if self.json_lines:
            line = json.dumps(event.to_dict(), sort_keys=True, default=str)
        else:
            stamp = time.strftime("%H:%M:%S", time.localtime(event.ts))
            parts = [f"{stamp} [{event.level:<7}] {event.name}"]
            if event.kind == "span" and event.dur is not None:
                parts.append(f"dur={event.dur * 1e3:.1f}ms")
            parts.extend(f"{k}={v}" for k, v in event.attrs.items())
            line = " ".join(parts)
        self.stream.write(line + "\n")

    def close(self) -> None:
        try:
            self.stream.flush()
        except Exception:  # noqa: BLE001 - closing a dead pipe
            pass


class JsonlSink:
    """Append every event as one JSON line to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: IO[str] | None = open(path, "a", encoding="utf-8")

    def handle(self, event: Event) -> None:
        if self._handle is None:
            return
        self._handle.write(
            json.dumps(event.to_dict(), sort_keys=True, default=str) + "\n"
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class MemorySink:
    """Buffer events in memory; the test plane's assertion surface."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    # -- query helpers -------------------------------------------------------

    def named(self, name: str) -> list[Event]:
        """Events with exactly this name, in emission order."""
        return [event for event in self.events if event.name == name]

    def spans(self, name: str | None = None) -> list[Event]:
        """Span events (optionally by name), in emission order."""
        return [
            event
            for event in self.events
            if event.kind == "span" and (name is None or event.name == name)
        ]

    def children_of(self, span_id: str | None) -> list[Event]:
        """Events whose direct parent is ``span_id``."""
        return [event for event in self.events if event.parent_id == span_id]

    def ancestors(self, event: Event) -> list[Event]:
        """Span chain from ``event``'s parent up to the root, in order."""
        by_id = {e.span_id: e for e in self.events if e.span_id is not None}
        chain: list[Event] = []
        parent = event.parent_id
        while parent is not None and parent in by_id:
            node = by_id[parent]
            chain.append(node)
            parent = node.parent_id
        return chain

    def clear(self) -> None:
        self.events.clear()


class TraceSink:
    """Collect events and write a Chrome-trace JSON file on close.

    Span events become duration (``X``) events, plain events become
    instants — the same Trace Event Format ``repro export --format
    trace`` emits for simulated timelines, so both open in the same
    viewer.  The document is written on :meth:`close` (the CLI closes
    sinks after the subcommand returns) or explicitly via :meth:`dump`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.events: list[Event] = []
        self._written = False

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def document(self) -> dict[str, Any]:
        from repro.export.trace import events_to_trace  # noqa: PLC0415 (numpy-free here)

        return events_to_trace(self.events)

    def dump(self, path: str | None = None) -> str:
        """Write the trace document; returns the path written."""
        target = path if path is not None else self.path
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(self.document(), handle, sort_keys=True)
        self._written = True
        return target

    def close(self) -> None:
        if not self._written:
            self.dump()


def events_from_jsonl(lines: Iterable[str]) -> list[Event]:
    """Parse events back from JSONL lines (inverse of :class:`JsonlSink`)."""
    events = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(Event(**json.loads(line)))
    return events
