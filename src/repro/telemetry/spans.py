"""Nestable spans: timed regions of runtime work.

A *span* is a named region of execution with wall-clock and CPU
timings, free-form attributes, and an identity that links it into a
tree: every span records the span that was open when it started as its
``parent_id``.  Nesting is tracked with a :class:`contextvars.ContextVar`,
so spans compose correctly across threads and ``asyncio`` tasks.

Cross-process propagation: spans opened inside a worker process cannot
see the parent process's context variable, so the run service ships a
*telemetry context* (:func:`pack_context` — the currently open span id)
inside each chunk payload and the worker activates it with
:func:`activate_context` before executing the chunk.  Worker-side spans
then record the parent process's span as their parent, the worker's
capture buffer collects them, and the parent replays them into its
sinks — the trace file shows one tree: campaign run > wave > pooled
per-request spans, regardless of which process executed what.

The fast path matters: ``span()`` on an inactive bus (no sinks, no
capture) does one attribute check and yields a shared no-op object.
That keeps always-on instrumentation of ``Engine.run`` and the store
hot paths under the telemetry plane's <3 % overhead budget.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from repro.telemetry.events import Event, get_bus

__all__ = [
    "Span",
    "activate_context",
    "current_span_id",
    "pack_context",
    "span",
]

_current_span: ContextVar[str | None] = ContextVar("repro_current_span", default=None)
_ids = itertools.count(1)


def current_span_id() -> str | None:
    """Id of the innermost open span (``None`` outside any span)."""
    return _current_span.get()


def _new_span_id() -> str:
    # Pid-prefixed so ids from pool workers can never collide with the
    # parent's when their spans are stitched into one trace.
    return f"{os.getpid():x}.{next(_ids)}"


class Span:
    """One open span; use :meth:`set` to attach attributes mid-flight."""

    __slots__ = ("name", "span_id", "parent_id", "level", "attrs", "_t0", "_c0", "_ts")

    def __init__(
        self, name: str, level: str, parent_id: str | None, attrs: dict[str, Any]
    ) -> None:
        self.name = name
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.level = level
        self.attrs = attrs
        self._ts = time.time()
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (recorded at span exit)."""
        self.attrs.update(attrs)

    def _finish(self) -> Event:
        return Event(
            name=self.name,
            ts=self._ts,
            level=self.level,
            kind="span",
            attrs=self.attrs,
            span_id=self.span_id,
            parent_id=self.parent_id,
            dur=time.perf_counter() - self._t0,
            cpu=time.process_time() - self._c0,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFFFFFF,
        )


class _NullSpan:
    """Shared no-op span yielded when the bus is dark."""

    __slots__ = ()
    span_id = None
    parent_id = None

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


@contextmanager
def span(name: str, level: str = "debug", **attrs: Any) -> Iterator[Any]:
    """Open a nested, timed span; emits one span event at exit.

    The span event records wall (``dur``) and CPU (``cpu``) seconds, the
    attributes given here plus any added via :meth:`Span.set`, and the
    enclosing span as its parent.  An exception escaping the body marks
    the span with ``error=repr(exc)`` and ``status="error"`` before
    re-raising.  When no sink or capture is attached the whole thing is
    a no-op.
    """
    bus = get_bus()
    if not bus.active:
        yield _NULL_SPAN
        return
    sp = Span(name, level, _current_span.get(), dict(attrs))
    token = _current_span.set(sp.span_id)
    try:
        yield sp
    except BaseException as exc:
        sp.attrs.setdefault("status", "error")
        sp.attrs.setdefault("error", repr(exc))
        raise
    finally:
        _current_span.reset(token)
        bus.emit(sp._finish())


def pack_context() -> dict[str, Any] | None:
    """Portable snapshot of the telemetry context for a pool worker.

    ``None`` when the bus is dark — the worker then skips every capture
    and span, keeping the no-sink overhead at a single ``is None`` test
    per chunk.
    """
    if not get_bus().active:
        return None
    return {"parent": _current_span.get()}


@contextmanager
def activate_context(context: dict[str, Any] | None) -> Iterator[list[Event] | None]:
    """Adopt a shipped telemetry context for the duration of a chunk.

    Worker-side counterpart of :func:`pack_context`: installs the
    parent process's open span as the local parent and captures every
    event emitted under it.  Yields the capture buffer (to return with
    the chunk results) or ``None`` when no context was shipped.
    """
    if context is None:
        yield None
        return
    bus = get_bus()
    token = _current_span.set(context.get("parent"))
    try:
        with bus.capture() as buffer:
            yield buffer
    finally:
        _current_span.reset(token)


def reset_spans() -> None:
    """Clear the current-span state (tests)."""
    _current_span.set(None)
