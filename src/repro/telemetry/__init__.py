"""``repro.telemetry`` — the runtime's observability plane.

A dependency-free instrumentation subsystem (stdlib only, importable
from any layer and any pool worker):

* :class:`~repro.telemetry.events.EventBus` — process-wide fan-out of
  typed structured :class:`~repro.telemetry.events.Event` records to
  pluggable sinks; dark (near-zero cost) until a sink is attached;
* :func:`~repro.telemetry.spans.span` — nestable timed regions (wall +
  CPU seconds) whose ids link into a tree; ``pack_context`` /
  ``activate_context`` carry the tree across the run service's worker
  pool so pooled per-request spans stitch under their submitting span;
* :class:`~repro.telemetry.metrics.MetricsRegistry` — always-on
  counters/gauges/histograms feeding the benchmark harness and the
  campaign progress surface;
* sinks (:mod:`repro.telemetry.sinks`): stderr log lines (text or
  JSONL), JSONL files, in-memory buffers for tests, and a Chrome-trace
  collector that reuses :mod:`repro.export.trace`'s event format.

CLI integration: every ``repro`` subcommand accepts ``--log-level``,
``--log-json`` and ``--trace FILE``; :func:`configure` is the one-call
setup those flags map onto.
"""

from __future__ import annotations

import sys
from typing import IO, Any

from repro.telemetry.events import (
    LEVELS,
    Event,
    EventBus,
    get_bus,
    level_number,
    reset_bus,
)
from repro.telemetry.metrics import (
    HistogramStat,
    MetricsRegistry,
    get_registry,
    reset_registry,
    timed,
)
from repro.telemetry.sinks import JsonlSink, LogSink, MemorySink, TraceSink
from repro.telemetry.spans import (
    activate_context,
    current_span_id,
    pack_context,
    span,
)
from repro.telemetry.spans import reset_spans as _reset_spans

__all__ = [
    "LEVELS",
    "Event",
    "EventBus",
    "HistogramStat",
    "JsonlSink",
    "LogSink",
    "MemorySink",
    "MetricsRegistry",
    "TraceSink",
    "activate_context",
    "configure",
    "current_span_id",
    "get_bus",
    "get_registry",
    "level_number",
    "pack_context",
    "reset_telemetry",
    "span",
    "timed",
]


def configure(
    log_level: str | None = None,
    log_json: bool = False,
    trace: str | None = None,
    log_stream: IO[str] | None = None,
) -> list[Any]:
    """Attach sinks for the standard CLI surface; returns them.

    ``log_level``/``log_json`` attach a :class:`LogSink` on ``stderr``
    (or ``log_stream``); ``trace`` attaches a :class:`TraceSink` whose
    Chrome-trace JSON is written when the sink is closed.  Callers own
    the returned sinks: detach them with
    ``get_bus().remove_sink(sink)`` (which also closes them) when the
    command finishes.
    """
    bus = get_bus()
    sinks: list[Any] = []
    if log_level is not None or log_json:
        sinks.append(
            bus.add_sink(
                LogSink(
                    stream=log_stream if log_stream is not None else sys.stderr,
                    level=log_level if log_level is not None else "info",
                    json_lines=log_json,
                )
            )
        )
    if trace is not None:
        sinks.append(bus.add_sink(TraceSink(trace)))
    return sinks


def reset_telemetry() -> None:
    """Reset bus, metrics and span state (tests, forked children)."""
    reset_bus()
    reset_registry()
    _reset_spans()
