"""Structured events and the process-wide event bus.

The telemetry plane's wire format is one typed record — :class:`Event` —
carrying a name, a wall-clock timestamp, a severity level, free-form
attributes and (for span events) the span identity and timings.  The
:class:`EventBus` fans emitted events out to pluggable sinks (stderr log
lines, JSONL files, in-memory buffers, Chrome-trace collectors — see
:mod:`repro.telemetry.sinks`).

Everything here is dependency-free stdlib: the bus is importable from
any layer of the runtime (engine, storage, worker processes) without
creating import cycles or dragging numpy into a pool worker that only
wants to report a span.

Cost model: the bus is **dark by default**.  With no sink attached and
no capture active, :attr:`EventBus.active` is ``False`` and every
instrumentation site — :func:`repro.telemetry.spans.span`,
:meth:`EventBus.event` — short-circuits to a single attribute check, so
always-on instrumentation of hot paths (``Engine.run``, store queries)
costs effectively nothing until someone attaches a sink.

Worker-pool capture: :meth:`EventBus.capture` installs a buffer that
records every event emitted while it is active.  The run service's pool
workers run their chunks under a capture and ship the buffered events
back to the parent alongside the results, where
:meth:`EventBus.replay` re-emits them into the parent's sinks — that is
how spans recorded inside a worker process end up stitched (by span
ids) under the submitting batch's span in a single trace file.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "LEVELS",
    "Event",
    "EventBus",
    "get_bus",
    "level_number",
    "reset_bus",
]

#: Severity names to numeric thresholds (matching :mod:`logging`).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def level_number(level: str) -> int:
    """Numeric threshold of a level name (unknown names rank as info)."""
    return LEVELS.get(level, LEVELS["info"])


@dataclass
class Event:
    """One structured telemetry record.

    Plain events (``kind="event"``) are point-in-time facts (a campaign
    wave finished, a claim was deferred).  Span events (``kind="span"``)
    are emitted *once, at span exit*, and additionally carry the span
    identity (``span_id``/``parent_id``) and its wall/CPU timings —
    ``ts`` is then the span's *start* time so exporters can lay spans
    out on a timeline.
    """

    name: str
    ts: float
    level: str = "info"
    kind: str = "event"
    attrs: dict[str, Any] = field(default_factory=dict)
    span_id: str | None = None
    parent_id: str | None = None
    #: Span wall-clock duration in seconds (span events only).
    dur: float | None = None
    #: Span process CPU time in seconds (span events only).
    cpu: float | None = None
    pid: int = 0
    tid: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (sinks and the JSONL log format use this)."""
        doc: dict[str, Any] = {
            "name": self.name,
            "ts": self.ts,
            "level": self.level,
            "kind": self.kind,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.span_id is not None:
            doc["span_id"] = self.span_id
        if self.parent_id is not None:
            doc["parent_id"] = self.parent_id
        if self.dur is not None:
            doc["dur"] = self.dur
        if self.cpu is not None:
            doc["cpu"] = self.cpu
        return doc


class EventBus:
    """Process-wide fan-out of :class:`Event` records to sinks.

    Sinks implement ``handle(event)`` and optionally ``close()``.  A
    sink raising never fails the instrumented code path: the exception
    is swallowed and the sink keeps receiving later events (telemetry
    must never take down a campaign wave).
    """

    def __init__(self) -> None:
        self._sinks: list[Any] = []
        self._captures: list[list[Event]] = []
        self._lock = threading.Lock()

    # -- sink management ----------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether emitting is worth the work (any sink or capture)."""
        return bool(self._sinks or self._captures)

    def add_sink(self, sink: Any) -> Any:
        """Attach a sink; returns it (handy for ``add_sink(MemorySink())``)."""
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        """Detach a sink (missing sinks are ignored) and close it."""
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                return
        close = getattr(sink, "close", None)
        if close is not None:
            try:
                close()
            except Exception:  # noqa: BLE001 - telemetry never raises
                pass

    def clear_sinks(self) -> None:
        """Detach (and close) every sink."""
        for sink in list(self._sinks):
            self.remove_sink(sink)

    # -- emission -----------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Deliver one event to every capture buffer and sink."""
        for buffer in self._captures:
            buffer.append(event)
        for sink in self._sinks:
            try:
                sink.handle(event)
            except Exception:  # noqa: BLE001 - a broken sink must not fail runs
                pass

    def event(self, name: str, level: str = "info", **attrs: Any) -> None:
        """Emit a plain (point-in-time) event, if anyone is listening.

        The event's ``parent_id`` is the currently open span, so plain
        events nest into the span tree exactly like child spans do.
        """
        if not self.active:
            return
        from repro.telemetry.spans import current_span_id  # noqa: PLC0415 (cycle)

        self.emit(
            Event(
                name=name,
                ts=time.time(),
                level=level,
                attrs=attrs,
                parent_id=current_span_id(),
                pid=os.getpid(),
                tid=threading.get_ident() & 0xFFFFFFFF,
            )
        )

    def replay(self, events: Iterable[Event | dict]) -> None:
        """Re-emit events recorded elsewhere (a pool worker's capture).

        Accepts :class:`Event` objects or their ``to_dict`` form; the
        events keep their original timestamps, pids and span identities,
        so a replayed worker span still stitches under its parent span.
        """
        for event in events:
            if isinstance(event, dict):
                event = Event(**event)
            self.emit(event)

    # -- worker-side capture -------------------------------------------------

    @contextmanager
    def capture(self) -> Iterator[list[Event]]:
        """Buffer every event emitted while active (innermost first).

        Used by pool workers (events travel back with the chunk result)
        and by tests; capturing makes the bus :attr:`active` even with
        no sink attached.
        """
        buffer: list[Event] = []
        self._captures.append(buffer)
        try:
            yield buffer
        finally:
            self._captures.remove(buffer)


_bus = EventBus()


def get_bus() -> EventBus:
    """The process-wide event bus."""
    return _bus


def reset_bus() -> None:
    """Detach all sinks and drop stray captures (tests, forked children)."""
    _bus.clear_sinks()
    _bus._captures.clear()
