"""Synapse — SYNthetic Application Profiler and Emulator (reproduction).

A faithful, laptop-runnable reproduction of *"Synapse: Synthetic
Application Profiler and Emulator"* (Merzky, Ha, Turilli, Jha; IPPS 2016,
arXiv:1808.00684).  Basic usage mirrors the paper's API::

    import repro as synapse

    profile = synapse.profile("sleep 1", store=store)
    result  = synapse.emulate("sleep 1", store=store)

and the simulation plane regenerates the paper's cross-machine
experiments::

    from repro.sim import SimBackend
    from repro.apps import GromacsModel

    backend = SimBackend("thinkie")
    prof = synapse.profile(GromacsModel(iterations=100_000), backend=backend)
    res  = synapse.emulate(prof, backend=SimBackend("stampede"))

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    EmulationPlan,
    EmulationResult,
    Emulator,
    Profile,
    Profiler,
    ProfileStats,
    Sample,
    SynapseConfig,
    SynapseError,
    aggregate,
    emulate,
    error_percent,
    profile,
    stats,
)
from repro.storage import FileStore, MemoryStore, MongoStore, open_store

__version__ = "0.10.0"

__all__ = [
    "EmulationPlan",
    "EmulationResult",
    "Emulator",
    "FileStore",
    "MemoryStore",
    "MongoStore",
    "Profile",
    "ProfileStats",
    "Profiler",
    "Sample",
    "SynapseConfig",
    "SynapseError",
    "__version__",
    "aggregate",
    "emulate",
    "error_percent",
    "open_store",
    "profile",
    "stats",
]
