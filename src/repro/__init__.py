"""Synapse — SYNthetic Application Profiler and Emulator (reproduction).

A faithful, laptop-runnable reproduction of *"Synapse: Synthetic
Application Profiler and Emulator"* (Merzky, Ha, Turilli, Jha; IPPS 2016,
arXiv:1808.00684).  Basic usage mirrors the paper's API::

    import repro as synapse

    profile = synapse.profile("sleep 1", store=store)
    result  = synapse.emulate("sleep 1", store=store)

and the simulation plane regenerates the paper's cross-machine
experiments::

    from repro.sim import SimBackend
    from repro.apps import GromacsModel

    backend = SimBackend("thinkie")
    prof = synapse.profile(GromacsModel(iterations=100_000), backend=backend)
    res  = synapse.emulate(prof, backend=SimBackend("stampede"))

Prediction & placement
----------------------

The :mod:`repro.predict` subsystem closes the loop the companion paper
("Synapse: Bridging the Gap Towards Predictable Workload Placement",
arXiv:1506.00272) motivates: stored profiles become *demand vectors*,
vectors are costed analytically on any machine model (no emulation run
needed), and task sets are placed across heterogeneous machine sets::

    prediction = synapse.predict("gmx mdrun", "titan", store=store)
    plan, report = synapse.place(
        EnsembleApp(), ["titan", "comet", "supermic"], validate=True
    )

``predict`` evaluates thousands of (workload, machine) candidate pairs
per millisecond via ``repro.predict.Predictor.predict_many``; ``place``
supports greedy earliest-finish-time and min-makespan heuristics plus a
contention-aware refinement pass, and ``validate=True`` replays the plan
through the simulation engine to report predicted-vs-emulated error.
The CLI mirrors both calls as ``repro predict`` and ``repro place``.

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    EmulationPlan,
    EmulationResult,
    Emulator,
    Profile,
    Profiler,
    ProfileStats,
    Sample,
    SynapseConfig,
    SynapseError,
    aggregate,
    emulate,
    error_percent,
    place,
    profile,
    traffic,
    stats,
)
from repro.storage import FileStore, MemoryStore, MongoStore, open_store

# The callable repro.predict package is both the prediction subsystem
# namespace and the predict() API entry point (see its module docstring).
import repro.predict as predict  # noqa: E402,PLC0414 (deliberate rebinding)

__version__ = "0.11.0"

__all__ = [
    "EmulationPlan",
    "EmulationResult",
    "Emulator",
    "FileStore",
    "MemoryStore",
    "MongoStore",
    "Profile",
    "ProfileStats",
    "Profiler",
    "Sample",
    "SynapseConfig",
    "SynapseError",
    "__version__",
    "aggregate",
    "emulate",
    "error_percent",
    "open_store",
    "place",
    "predict",
    "profile",
    "stats",
    "traffic",
]
