"""Declarative fault plans: what to break, where, and how often.

A :class:`FaultPlan` is a seedable, deterministic description of faults
to inject at the runtime's named injection points (see
:mod:`repro.faults.inject` for the point inventory).  Plan form (dict
or JSON file)::

    {
      "seed": 7,
      "rules": [
        {"point": "store.put", "mode": "error", "probability": 0.05},
        {"point": "worker.execute", "mode": "crash", "at": 1,
         "once": true, "fuse": "/tmp/crash.fuse"},
        {"point": "campaign.claim", "mode": "delay", "delay": 0.2,
         "every": 3}
      ]
    }

Each rule names one injection ``point`` and a ``mode``:

``error``
    Raise an exception: :class:`InjectedFault` (retryable) by default,
    ``"error": "os"`` raises :class:`OSError` (for sites whose
    best-effort handling swallows OS errors, e.g. the file store's
    journal append), ``"error": "store"`` raises
    :class:`~repro.core.errors.StoreError`.
``delay``
    Sleep ``delay`` seconds (default 0.05) — hangs, slow NFS, GC pauses.
``crash``
    ``os._exit(exit_code)`` — a segfault/OOM-kill stand-in that takes
    the whole worker process down without unwinding.

Firing conditions (first match wins):

* ``match_key`` restricts the rule to calls whose context key equals it
  (a campaign cell digest, a store command) — combined with any of the
  conditions below;
* ``at``: fire on exactly the Nth matching hit (1-based, per process);
* ``every``: fire on every Nth matching hit;
* ``probability``: fire when the *stateless decision hash* of
  ``(seed, rule, point, key, hit)`` falls below the probability — the
  same plan, seed and call sequence always fire identically, which is
  what makes chaos runs reproducible;
* none of the above: fire on every matching hit.

``once`` limits a rule to a single firing per process; ``fuse`` names a
marker file created atomically (``O_EXCL``) before firing, limiting the
rule to a single firing *across every process sharing the path* — the
way to inject exactly one worker crash into a pool whose restarted
workers would otherwise re-fire the rule forever.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.core.errors import ConfigError, RetryableError

__all__ = ["FaultPlan", "FaultRule", "InjectedFault"]

_MODES = ("error", "delay", "crash")
_ERROR_KINDS = ("fault", "store", "os")
_RULE_KEYS = frozenset(
    {"point", "mode", "probability", "at", "every", "match_key", "once",
     "fuse", "delay", "error", "exit_code"}
)


class InjectedFault(RetryableError):
    """A deliberately injected failure (chaos/fault-injection runs).

    Retryable by design: injected faults emulate transient environment
    trouble, and a retry re-rolls the (deterministic) dice.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule of a :class:`FaultPlan` (see module docstring)."""

    point: str
    mode: str = "error"
    probability: float | None = None
    at: int | None = None
    every: int | None = None
    match_key: str | None = None
    once: bool = False
    fuse: str | None = None
    delay: float = 0.05
    error: str = "fault"
    exit_code: int = 13

    def __post_init__(self) -> None:
        if not self.point:
            raise ConfigError("fault rules need a non-empty 'point'")
        if self.mode not in _MODES:
            raise ConfigError(
                f"fault rule mode must be one of {_MODES}, not {self.mode!r}"
            )
        if self.error not in _ERROR_KINDS:
            raise ConfigError(
                f"fault rule error must be one of {_ERROR_KINDS}, "
                f"not {self.error!r}"
            )
        conditions = sum(
            value is not None for value in (self.probability, self.at, self.every)
        )
        if conditions > 1:
            raise ConfigError(
                "fault rules take at most one of 'probability', 'at', 'every'"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ConfigError("fault rule probability must be in [0, 1]")
        if self.at is not None and self.at < 1:
            raise ConfigError("fault rule 'at' must be >= 1 (1-based hit)")
        if self.every is not None and self.every < 1:
            raise ConfigError("fault rule 'every' must be >= 1")
        if self.delay < 0:
            raise ConfigError("fault rule delay must be >= 0")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(data, Mapping):
            raise ConfigError(f"fault rules must be mappings, not {data!r}")
        unknown = set(data) - _RULE_KEYS
        if unknown:
            raise ConfigError(f"unknown fault rule keys: {sorted(unknown)}")
        if "point" not in data:
            raise ConfigError("fault rules need a 'point'")
        try:
            return cls(
                point=str(data["point"]),
                mode=str(data.get("mode", "error")),
                probability=(
                    float(data["probability"])
                    if data.get("probability") is not None else None
                ),
                at=int(data["at"]) if data.get("at") is not None else None,
                every=(
                    int(data["every"]) if data.get("every") is not None else None
                ),
                match_key=(
                    str(data["match_key"])
                    if data.get("match_key") is not None else None
                ),
                once=bool(data.get("once", False)),
                fuse=str(data["fuse"]) if data.get("fuse") is not None else None,
                delay=float(data.get("delay", 0.05)),
                error=str(data.get("error", "fault")),
                exit_code=int(data.get("exit_code", 13)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"invalid fault rule values: {exc}") from exc

    def matches(self, point: str, key: str | None) -> bool:
        """Whether a call at ``point`` with context ``key`` hits this rule."""
        if self.point != point:
            return False
        return self.match_key is None or self.match_key == key

    def decide(self, seed: int, index: int, key: str | None, hit: int) -> bool:
        """Whether the rule fires on its ``hit``-th matching call.

        Pure function of the plan seed, rule index, context key and hit
        ordinal — no RNG state, so the decision is identical in every
        process that replays the same call sequence.
        """
        if self.at is not None:
            return hit == self.at
        if self.every is not None:
            return hit % self.every == 0
        if self.probability is not None:
            return _fraction(seed, index, self.point, key, hit) < self.probability
        return True

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"point": self.point, "mode": self.mode}
        for name in ("probability", "at", "every", "match_key", "fuse"):
            value = getattr(self, name)
            if value is not None:
                doc[name] = value
        if self.once:
            doc["once"] = True
        if self.mode == "delay":
            doc["delay"] = self.delay
        if self.mode == "error" and self.error != "fault":
            doc["error"] = self.error
        if self.mode == "crash" and self.exit_code != 13:
            doc["exit_code"] = self.exit_code
        return doc


def _fraction(*parts: Any) -> float:
    """Deterministic uniform fraction in [0, 1) from hashable parts."""
    payload = "|".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule` (see module docstring)."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    #: Free-form label surfaced in telemetry (plan file name, test id).
    name: str = "faults"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ConfigError("fault plans must be JSON objects")
        unknown = set(data) - {"seed", "rules", "name"}
        if unknown:
            raise ConfigError(f"unknown fault plan keys: {sorted(unknown)}")
        rules = data.get("rules", ())
        if isinstance(rules, (str, Mapping)) or not isinstance(
            rules, (list, tuple)
        ):
            raise ConfigError("fault plan 'rules' must be a list")
        return cls(
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "faults")),
        )

    @classmethod
    def from_json(cls, text_or_path: str | Path) -> "FaultPlan":
        """Parse a plan from inline JSON or a JSON file path."""
        text = str(text_or_path)
        if text.lstrip().startswith("{"):
            name = "inline"
        else:
            name = Path(text).name
            try:
                text = Path(text).read_text(encoding="utf-8")
            except OSError as exc:
                raise ConfigError(
                    f"cannot read fault plan {text_or_path}: {exc}"
                ) from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault plan JSON: {exc}") from exc
        plan = cls.from_dict(data)
        if plan.name == "faults":
            plan = FaultPlan(rules=plan.rules, seed=plan.seed, name=name)
        return plan

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "name": self.name,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def rules_for(self, point: str) -> list[tuple[int, FaultRule]]:
        """``(rule index, rule)`` pairs that can ever match ``point``."""
        return [
            (index, rule)
            for index, rule in enumerate(self.rules)
            if rule.point == point
        ]
