"""Deterministic fault injection: the runtime's chaos plane.

Trustworthy emulation of long-running workloads on unreliable resources
(the paper's value proposition) needs the failure paths exercised as
deliberately as the happy paths.  This package provides first-class,
*seedable* fault injection at named points across every layer — store
writes/reads, the file store's index journal, worker execution, the
campaign claim protocol — replacing ad-hoc monkeypatching in tests and
enabling chaos soak runs of real campaigns:

* :class:`FaultPlan` / :class:`FaultRule` — a declarative, JSON-loadable
  description of what to break (point), how (error / delay / crash) and
  when (Nth hit, every Nth, or a seeded probability whose decisions are
  a pure hash of ``(seed, rule, point, key, hit)`` — bit-reproducible);
* :func:`inject` — the one-line call instrumented sites make; free when
  no plan is active;
* :func:`activate` / :func:`deactivate` / :func:`injected_faults` —
  programmatic activation; ``repro --faults plan.json`` and the
  ``REPRO_FAULTS`` environment variable activate from the CLI and from
  forked/spawned workers.

See :mod:`repro.faults.inject` for the injection-point inventory and
:mod:`repro.faults.plan` for the plan schema.
"""

from __future__ import annotations

from repro.faults.inject import (
    ENV_VAR,
    activate,
    active_plan,
    deactivate,
    inject,
    injected_faults,
    reset,
)
from repro.faults.plan import FaultPlan, FaultRule, InjectedFault

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "activate",
    "active_plan",
    "deactivate",
    "inject",
    "injected_faults",
    "reset",
]
