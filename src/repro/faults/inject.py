"""The injection runtime: named points, activation, and firing.

Instrumented call sites declare *injection points* by calling
:func:`inject` with a stable point name (and an optional context key)::

    from repro.faults import inject
    ...
    inject("store.put", key=profile.command)

With no plan active the call is a single global ``is None`` check, so
the points are always-on like the metrics registry.  A plan activates

* programmatically — :func:`activate` / :func:`deactivate` or the
  :func:`injected_faults` context manager (tests);
* via the CLI — ``repro --faults plan.json ...``;
* via the environment — ``REPRO_FAULTS=plan.json`` (or inline JSON),
  read lazily on the first injection-point call, so pool workers and
  subprocesses inherit chaos configuration without any plumbing.

Point inventory (grep for ``inject(`` to verify):

========================  ====================================================
``store.put``             profile writes (file / memory stores)
``store.get``             payload reads (``get_many``)
``store.entries``         index-plane scans
``store.journal``         the file store's sidecar-index append
``worker.execute``        request dispatch (parent or pool worker); the
                          context key is the request key (cell digest)
``campaign.claim``        the claim protocol's marker read-back
``campaign.gc``           stale-claim garbage collection
``coordinator.heartbeat`` every elastic-worker heartbeat beat; the context
                          key is the worker name (``crash`` kills the
                          worker mid-wave, ``error`` drops the beat)
``coordinator.lease.renew``  every held-lease renewal; the context key is
                          the worker name (``error`` ages the lease into
                          stealability while the owner keeps working)
``coordinator.steal``     every lease-steal attempt; the context key is
                          the cell digest (``error`` defers the takeover)
========================  ====================================================

Hit counters are per process: a pool worker forked from the parent
inherits the active plan but counts its own hits.  Rules needing
exactly-one-firing semantics *across* processes (e.g. one worker crash
per campaign) use a ``fuse`` file — see :mod:`repro.faults.plan`.

Every firing emits a ``fault.injected`` telemetry event and bumps the
``faults.injected`` counter before acting, so chaos runs are observable
in the same trace/log stream as the behavior they provoke.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

from repro.core.errors import StoreError
from repro.faults.plan import FaultPlan, FaultRule, InjectedFault

__all__ = [
    "activate",
    "active_plan",
    "deactivate",
    "inject",
    "injected_faults",
]

#: Environment variable naming a fault plan (JSON file path or inline
#: JSON object).  Read lazily on the first :func:`inject` call.
ENV_VAR = "REPRO_FAULTS"

_plan: FaultPlan | None = None
#: rule index -> matching-hit count (per process, reset on activation).
_hits: dict[int, int] = {}
#: rule indexes already fired under ``once``.
_fired: set[int] = set()
#: Whether ENV_VAR has been consulted in this process.
_env_checked = False


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as this process's active fault plan.

    Resets hit counters and per-process ``once`` state; returns the
    plan (handy for ``activate(FaultPlan.from_json(path))``).
    """
    global _plan, _env_checked
    _plan = plan
    _hits.clear()
    _fired.clear()
    _env_checked = True
    return plan


def deactivate() -> None:
    """Drop the active plan (idempotent); also blocks env re-activation
    for this process, so tests deactivate cleanly under REPRO_FAULTS."""
    global _plan, _env_checked
    _plan = None
    _hits.clear()
    _fired.clear()
    _env_checked = True


def reset() -> None:
    """Forget all fault state *including* the env check (tests)."""
    global _plan, _env_checked
    _plan = None
    _hits.clear()
    _fired.clear()
    _env_checked = False


def active_plan() -> FaultPlan | None:
    """The currently active plan, if any (env-activated lazily)."""
    _check_env()
    return _plan


def _check_env() -> None:
    global _env_checked, _plan
    if _env_checked:
        return
    _env_checked = True
    spec = os.environ.get(ENV_VAR)
    if spec:
        _plan = FaultPlan.from_json(spec)


def _burn_fuse(path: str) -> bool:
    """Atomically claim a cross-process one-shot fuse; True = we fire."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False  # unwritable fuse path: fail safe, never fire
    os.close(fd)
    return True


def _fire(rule: FaultRule, point: str, key: str | None, hit: int) -> None:
    from repro.telemetry.events import get_bus  # noqa: PLC0415 (cycle)
    from repro.telemetry.metrics import get_registry  # noqa: PLC0415

    get_registry().inc("faults.injected")
    get_bus().event(
        "fault.injected", level="warning", point=point, mode=rule.mode,
        key=key, hit=hit, pid=os.getpid(),
    )
    if rule.mode == "delay":
        time.sleep(rule.delay)
        return
    if rule.mode == "crash":
        # A segfault/OOM-kill stand-in: no unwinding, no atexit, the
        # worker just disappears and the pool breaks.
        os._exit(rule.exit_code)
    message = f"injected fault at {point}" + (f" (key={key})" if key else "")
    if rule.error == "os":
        raise OSError(message)
    if rule.error == "store":
        raise StoreError(message)
    raise InjectedFault(message)


def inject(point: str, key: str | None = None) -> None:
    """Fire any active fault rule matching ``point`` (and ``key``).

    The instrumented call site's one-liner.  No-op (one global check)
    without an active plan.  ``error`` rules raise out of this call;
    ``delay`` rules sleep; ``crash`` rules never return.
    """
    if _plan is None and _env_checked:
        return
    _check_env()
    plan = _plan
    if plan is None:
        return
    for index, rule in enumerate(plan.rules):
        if not rule.matches(point, key):
            continue
        hit = _hits.get(index, 0) + 1
        _hits[index] = hit
        if not rule.decide(plan.seed, index, key, hit):
            continue
        if rule.once and index in _fired:
            continue
        if rule.fuse is not None and not _burn_fuse(rule.fuse):
            continue
        _fired.add(index)
        _fire(rule, point, key, hit)


@contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope a plan to a ``with`` block (tests, chaos soak harnesses)."""
    global _plan, _env_checked
    previous, previous_checked = _plan, _env_checked
    activate(plan)
    try:
        yield plan
    finally:
        _plan, _env_checked = previous, previous_checked
        _hits.clear()
        _fired.clear()
