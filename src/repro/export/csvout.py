"""CSV export of profiles and statistics.

The paper publishes its raw data sets alongside plotting scripts; this
module provides the equivalent machine-readable export: one row per
sample with every recorded metric as a column, plus a totals/statistics
export for aggregated repeat groups.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Iterable

from repro.core.samples import Profile
from repro.core.statistics import ProfileStats

__all__ = ["profile_to_csv", "rows_to_csv", "stats_to_csv", "write_csv"]


def rows_to_csv(headers: Iterable[str], rows: Iterable[Iterable[object]]) -> str:
    """Render header + data rows as CSV text (generic table export).

    Cells are written as given — pre-format floats (``repr`` for
    round-trip precision) before calling.  Used by the campaign
    analysis report's ``--format csv`` output.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def profile_to_csv(profile: Profile) -> str:
    """Render a profile's samples as CSV text (one row per sample)."""
    metric_names = sorted(
        {name for sample in profile.samples for name in sample.values}
    )
    rows = (
        [sample.index, f"{sample.t:.6f}", f"{sample.dt:.6f}"]
        + [repr(sample.values[m]) if m in sample.values else "" for m in metric_names]
        for sample in profile.samples
    )
    return rows_to_csv(["index", "t", "dt"] + metric_names, rows)


def stats_to_csv(stats: ProfileStats) -> str:
    """Render aggregated statistics as CSV text (one row per metric)."""
    rows = (
        [
            name,
            stats.metrics[name].n,
            repr(stats.metrics[name].mean),
            repr(stats.metrics[name].std),
            repr(stats.metrics[name].ci99),
            repr(stats.metrics[name].minimum),
            repr(stats.metrics[name].maximum),
        ]
        for name in sorted(stats.metrics)
    )
    return rows_to_csv(["metric", "n", "mean", "std", "ci99", "min", "max"], rows)


def write_csv(text: str, path: str | os.PathLike) -> None:
    """Write CSV text to a file (parent directories created)."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)


def rows_from_csv(text: str) -> list[dict[str, str]]:
    """Parse exported CSV back into dict rows (round-trip helper)."""
    reader = csv.DictReader(io.StringIO(text))
    return list(reader)


def columns(text: str) -> Iterable[str]:
    """Header columns of exported CSV text."""
    reader = csv.reader(io.StringIO(text))
    return next(reader, [])
