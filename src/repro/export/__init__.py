"""Export utilities: CSV data dumps and Chrome-trace timelines."""

from repro.export.csvout import profile_to_csv, stats_to_csv, write_csv
from repro.export.trace import dump_trace, profile_to_trace, record_to_trace

__all__ = [
    "dump_trace",
    "profile_to_csv",
    "profile_to_trace",
    "record_to_trace",
    "stats_to_csv",
    "write_csv",
]
