"""Chrome-trace (Trace Event Format) export.

Execution records and profiles export to the JSON format consumed by
``chrome://tracing`` / Perfetto, giving the timeline view the paper's
Fig 2/3 sketches by hand:

* simulation-plane phases become duration (``X``) events, one track per
  phase, so the per-sample barrier structure of an emulation is visible;
* I/O events become instant (``i``) events;
* cumulative counters become counter (``C``) tracks sampled at their
  breakpoints (capped to keep files small).

Timestamps are microseconds, per the trace-event spec.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.core.samples import Profile
from repro.sim.engine import ExecutionRecord

__all__ = ["record_to_trace", "profile_to_trace", "events_to_trace", "dump_trace"]

_US = 1e6
#: Maximum points exported per counter track.
_MAX_COUNTER_POINTS = 512


def _counter_events(
    name: str, times: np.ndarray, values: np.ndarray, pid: int
) -> list[dict[str, Any]]:
    if times.size > _MAX_COUNTER_POINTS:
        picks = np.linspace(0, times.size - 1, _MAX_COUNTER_POINTS).astype(int)
        times = times[picks]
        values = values[picks]
    return [
        {
            "name": name,
            "ph": "C",
            "ts": float(t) * _US,
            "pid": pid,
            "args": {name: float(v)},
        }
        for t, v in zip(times, values)
    ]


def record_to_trace(record: ExecutionRecord, pid: int = 1) -> dict[str, Any]:
    """Convert an execution record to a trace-event document."""
    events: list[dict[str, Any]] = []
    for index, (t0, t1) in enumerate(record.phase_bounds):
        events.append(
            {
                "name": f"phase-{index}",
                "cat": "phase",
                "ph": "X",
                "ts": t0 * _US,
                "dur": max(t1 - t0, 0.0) * _US,
                "pid": pid,
                "tid": 0,
            }
        )
    for event in record.io_events:
        events.append(
            {
                "name": f"{event.op} {event.nbytes}B @{event.block_size}",
                "cat": "io",
                "ph": "i",
                "ts": event.t * _US,
                "pid": pid,
                "tid": 1,
                "s": "t",
                "args": {
                    "bytes": event.nbytes,
                    "block_size": event.block_size,
                    "filesystem": event.filesystem,
                },
            }
        )
    for name, series in record.counters.items():
        events.extend(_counter_events(name, series.times, series.values, pid))
    for name, series in record.levels.items():
        events.extend(_counter_events(name, series.times, series.values, pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "machine": record.machine.name,
            "duration_s": record.duration,
            **{k: str(v) for k, v in record.metadata.items()},
        },
    }


def profile_to_trace(profile: Profile, pid: int = 1) -> dict[str, Any]:
    """Convert a profile to a trace-event document.

    Samples become duration events (so the sampling grid is visible) and
    every recorded metric becomes a counter track.
    """
    events: list[dict[str, Any]] = []
    for sample in profile.samples:
        events.append(
            {
                "name": f"sample-{sample.index}",
                "cat": "sample",
                "ph": "X",
                "ts": sample.t * _US,
                "dur": sample.dt * _US,
                "pid": pid,
                "tid": 0,
                "args": {k: v for k, v in sample.values.items()},
            }
        )
    for name in profile.metric_names():
        series = profile.series(name)
        if len(series):
            events.extend(_counter_events(name, series.times, series.values, pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "command": profile.command,
            "tags": list(profile.tags),
            "machine": str(profile.machine.get("name", "?")),
            "tx_s": profile.tx,
        },
    }


def events_to_trace(events) -> dict[str, Any]:
    """Convert runtime telemetry events to a trace-event document.

    The runtime counterpart of :func:`record_to_trace`: span events
    (:class:`repro.telemetry.Event` with ``kind="span"``) become
    duration (``X``) events laid out from the earliest timestamp, plain
    events become instants (``i``).  Each emitting process gets its own
    ``pid`` track (pool workers show up beside the parent), and every
    span's identity (``span_id``/``parent_id``) and CPU seconds travel
    in ``args`` — the parent chain is what stitches pooled per-request
    spans under their submitting wave span.

    Accepts :class:`~repro.telemetry.events.Event` objects or their
    ``to_dict`` form, so JSONL log files replay into traces too.
    """
    records = [
        event.to_dict() if hasattr(event, "to_dict") else dict(event)
        for event in events
    ]
    base = min((record["ts"] for record in records), default=0.0)
    trace_events: list[dict[str, Any]] = []
    for record in records:
        args = dict(record.get("attrs", ()))
        if record.get("span_id") is not None:
            args["span_id"] = record["span_id"]
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        common = {
            "name": record["name"],
            "cat": "runtime",
            "ts": (record["ts"] - base) * _US,
            "pid": record.get("pid", 0),
            "tid": record.get("tid", 0),
            "args": args,
        }
        if record.get("kind") == "span":
            if record.get("cpu") is not None:
                args["cpu_s"] = record["cpu"]
            trace_events.append(
                {**common, "ph": "X", "dur": (record.get("dur") or 0.0) * _US}
            )
        else:
            trace_events.append({**common, "ph": "i", "s": "t"})
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry",
            "events": len(trace_events),
            "base_unix_ts": base,
        },
    }


def dump_trace(document: dict[str, Any], path: str) -> None:
    """Write a trace document to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
