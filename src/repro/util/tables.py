"""Minimal fixed-width ASCII table renderer.

The CLI, the examples and every benchmark print result rows; a single
renderer keeps the output format uniform (and diff-able in
``bench_output.txt``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["Table"]


class Table:
    """Accumulate rows and render them with aligned columns.

    >>> t = Table(["machine", "Tx"])
    >>> t.add_row(["thinkie", 1.25])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row; cells are stringified (floats get 4 significant digits)."""
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:.4g}")
            else:
                cells.append(str(cell))
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
