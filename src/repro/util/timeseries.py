"""A small time-series container used by watchers and the sim engine.

A :class:`TimeSeries` is a monotone sequence of ``(t, value)`` points for a
*cumulative* counter (bytes written so far, cycles used so far, ...).  The
profiler stores one per watcher metric; the simulation engine produces one
per virtual counter.  Operations follow the paper's post-processing needs:
differencing into per-sample deltas, resampling to the profiler grid, and
integration of rate-like series.

The container is built for the simulation plane's batched hot paths:

* construction passes NumPy arrays straight through (no ``list()``
  round-trips), so the engine can hand over freshly computed arrays
  without copies — the container treats its arrays as frozen and callers
  must not mutate them afterwards;
* :meth:`append` grows an internal buffer with amortised capacity
  doubling instead of reallocating per point (``np.append`` is O(n) per
  call, O(n²) for a sampling loop);
* the value range used by :meth:`value_at`/:meth:`values_at` clamping is
  computed once and cached, so grid sampling does not rescan the series
  per sample point.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["TimeSeries"]


def _as_floats(data: object) -> np.ndarray:
    """Coerce arrays / sequences / iterables to a float64 array.

    Arrays pass through without copying (dtype permitting); generators
    and other one-shot iterables are materialised exactly once.
    """
    if isinstance(data, np.ndarray):
        return data if data.dtype == np.float64 else data.astype(float)
    if isinstance(data, (list, tuple)):
        return np.asarray(data, dtype=float)
    if isinstance(data, Sequence):  # range, array.array, ...
        return np.asarray(data, dtype=float)
    return np.fromiter(data, dtype=float)


class TimeSeries:
    """Piecewise-linear cumulative counter samples.

    Parameters
    ----------
    times:
        Non-decreasing sample timestamps (seconds).
    values:
        Counter values at those timestamps.  For cumulative counters these
        should be non-decreasing, but the container does not enforce it
        (RSS, for instance, can shrink).
    """

    __slots__ = ("_times", "_values", "_n", "_vmin", "_vmax")

    def __init__(self, times: object = (), values: object = ()) -> None:
        t = _as_floats(times)
        v = _as_floats(values)
        if t.shape != v.shape:
            raise ValueError("times and values must have the same length")
        if t.size and np.any(np.diff(t) < 0):
            raise ValueError("timestamps must be non-decreasing")
        self._times = t
        self._values = v
        self._n = int(t.size)
        self._vmin: float | None = None
        self._vmax: float | None = None

    @classmethod
    def presorted(cls, times: object, values: object) -> "TimeSeries":
        """Wrap arrays the caller guarantees aligned and time-sorted.

        The engine's hot paths build breakpoint grids that are sorted by
        construction; this constructor skips the O(n) monotonicity scan
        that :meth:`__init__` runs.  Passing unsorted times is a caller
        bug and breaks interpolation silently — use ``__init__`` unless
        the ordering is structural.
        """
        series = cls.__new__(cls)
        t = _as_floats(times)
        v = _as_floats(values)
        if t.shape != v.shape:
            raise ValueError("times and values must have the same length")
        series._times = t
        series._values = v
        series._n = int(t.size)
        series._vmin = None
        series._vmax = None
        return series

    # -- storage -----------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Timestamps as an array (a view of the internal buffer)."""
        t = self._times
        return t if t.size == self._n else t[: self._n]

    @property
    def values(self) -> np.ndarray:
        """Values as an array (a view of the internal buffer)."""
        v = self._values
        return v if v.size == self._n else v[: self._n]

    def _value_range(self) -> tuple[float, float]:
        """Cached ``(min, max)`` of the values (clamp bounds)."""
        if self._vmin is None:
            values = self.values
            self._vmin = float(values.min())
            self._vmax = float(values.max())
        return self._vmin, self._vmax  # type: ignore[return-value]

    # -- construction ------------------------------------------------------

    @classmethod
    def from_points(cls, points: Sequence[tuple[float, float]]) -> "TimeSeries":
        """Build a series from ``(t, value)`` pairs."""
        if not points:
            return cls()
        times, values = zip(*points)
        return cls(times, values)

    def append(self, t: float, value: float) -> None:
        """Append one point; ``t`` must not precede the last timestamp.

        Appending amortises to O(1): the internal buffers double in
        capacity when full, so sampling loops do not pay a reallocation
        per point.
        """
        n = self._n
        if n and t < self._times[n - 1]:
            raise ValueError("appended timestamp precedes the series end")
        if n >= self._times.size:
            capacity = max(8, 2 * self._times.size)
            grown_t = np.empty(capacity)
            grown_v = np.empty(capacity)
            grown_t[:n] = self._times[:n]
            grown_v[:n] = self._values[:n]
            self._times = grown_t
            self._values = grown_v
        self._times[n] = float(t)
        self._values[n] = float(value)
        self._n = n + 1
        if self._vmin is not None:
            self._vmin = min(self._vmin, float(value))
            self._vmax = max(self._vmax, float(value))  # type: ignore[arg-type]

    # -- pickling (records cross process boundaries in spawn_many) ---------

    def __getstate__(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.array(self.times), np.array(self.values))

    def __setstate__(self, state: tuple[np.ndarray, np.ndarray]) -> None:
        times, values = state
        self._times = times
        self._values = values
        self._n = int(times.size)
        self._vmin = None
        self._vmax = None

    # -- basic queries -----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return np.array_equal(self.times, other.times) and np.array_equal(
            self.values, other.values
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries(n={len(self)}, span={self.span():.3f}s)"

    def span(self) -> float:
        """Wall-clock extent covered by the series (0 for <2 points)."""
        if self._n < 2:
            return 0.0
        times = self.times
        return float(times[-1] - times[0])

    def first(self) -> float:
        """First value (raises ``IndexError`` when empty)."""
        return float(self.values[0])

    def last(self) -> float:
        """Last value (raises ``IndexError`` when empty)."""
        return float(self.values[-1])

    def total(self) -> float:
        """Net growth of the counter over the series (last - first)."""
        if self._n == 0:
            return 0.0
        values = self.values
        return float(values[-1] - values[0])

    def max(self) -> float:
        """Maximum observed value (0.0 when empty)."""
        if self._n == 0:
            return 0.0
        return self._value_range()[1]

    # -- transformations ----------------------------------------------------

    def value_at(self, t: float) -> float:
        """Linearly interpolated counter value at time ``t``.

        Values are clamped to the first/last observation outside the
        covered range, matching how a cumulative counter behaves before
        process start (first reading) and after exit (final reading).
        Results are additionally clipped into the observed value range:
        true linear interpolation can never leave it, but degenerate
        (near-duplicate) timestamps would otherwise overflow the slope.
        """
        if self._n == 0:
            return 0.0
        value = float(np.interp(t, self.times, self.values))
        lo, hi = self._value_range()
        return float(min(max(value, lo), hi))

    def values_at(self, ts: object) -> np.ndarray:
        """Vectorised :meth:`value_at` over a whole sample grid.

        ``ts`` may be an array (used as-is, no copy), a sequence, or a
        one-shot iterable (consumed exactly once).
        """
        grid = _as_floats(ts)
        if self._n == 0:
            return np.zeros(grid.shape)
        out = np.interp(grid, self.times, self.values)
        lo, hi = self._value_range()
        return np.clip(out, lo, hi)

    def deltas(self) -> np.ndarray:
        """Per-interval increments between consecutive samples."""
        if self._n < 2:
            return np.zeros(0)
        return np.diff(self.values)

    def resample(self, grid: object) -> "TimeSeries":
        """Interpolate the series onto a new timestamp grid."""
        grid = _as_floats(grid)
        return TimeSeries(grid, self.values_at(grid))

    def shifted(self, dt: float) -> "TimeSeries":
        """Return a copy with all timestamps shifted by ``dt``."""
        return TimeSeries(self.times + dt, np.array(self.values))

    def integrate(self) -> float:
        """Trapezoidal integral of the series, for rate-like values."""
        if self._n < 2:
            return 0.0
        return float(np.trapezoid(self.values, self.times))

    def to_points(self) -> list[tuple[float, float]]:
        """Serialise to a plain list of ``(t, value)`` pairs."""
        return [(float(t), float(v)) for t, v in zip(self.times, self.values)]
