"""A small time-series container used by watchers and the sim engine.

A :class:`TimeSeries` is a monotone sequence of ``(t, value)`` points for a
*cumulative* counter (bytes written so far, cycles used so far, ...).  The
profiler stores one per watcher metric; the simulation engine produces one
per virtual counter.  Operations follow the paper's post-processing needs:
differencing into per-sample deltas, resampling to the profiler grid, and
integration of rate-like series.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["TimeSeries"]


class TimeSeries:
    """Piecewise-linear cumulative counter samples.

    Parameters
    ----------
    times:
        Non-decreasing sample timestamps (seconds).
    values:
        Counter values at those timestamps.  For cumulative counters these
        should be non-decreasing, but the container does not enforce it
        (RSS, for instance, can shrink).
    """

    __slots__ = ("times", "values")

    def __init__(self, times: Iterable[float] = (), values: Iterable[float] = ()) -> None:
        self.times = np.asarray(list(times), dtype=float)
        self.values = np.asarray(list(values), dtype=float)
        if self.times.shape != self.values.shape:
            raise ValueError("times and values must have the same length")
        if self.times.size and np.any(np.diff(self.times) < 0):
            raise ValueError("timestamps must be non-decreasing")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_points(cls, points: Sequence[tuple[float, float]]) -> "TimeSeries":
        """Build a series from ``(t, value)`` pairs."""
        if not points:
            return cls()
        times, values = zip(*points)
        return cls(times, values)

    def append(self, t: float, value: float) -> None:
        """Append one point; ``t`` must not precede the last timestamp."""
        if self.times.size and t < self.times[-1]:
            raise ValueError("appended timestamp precedes the series end")
        self.times = np.append(self.times, float(t))
        self.values = np.append(self.values, float(value))

    # -- basic queries -----------------------------------------------------

    def __len__(self) -> int:
        return int(self.times.size)

    def __bool__(self) -> bool:
        return self.times.size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return np.array_equal(self.times, other.times) and np.array_equal(
            self.values, other.values
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries(n={len(self)}, span={self.span():.3f}s)"

    def span(self) -> float:
        """Wall-clock extent covered by the series (0 for <2 points)."""
        if self.times.size < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    def first(self) -> float:
        """First value (raises ``IndexError`` when empty)."""
        return float(self.values[0])

    def last(self) -> float:
        """Last value (raises ``IndexError`` when empty)."""
        return float(self.values[-1])

    def total(self) -> float:
        """Net growth of the counter over the series (last - first)."""
        if self.times.size == 0:
            return 0.0
        return float(self.values[-1] - self.values[0])

    def max(self) -> float:
        """Maximum observed value (0.0 when empty)."""
        if self.values.size == 0:
            return 0.0
        return float(self.values.max())

    # -- transformations ----------------------------------------------------

    def value_at(self, t: float) -> float:
        """Linearly interpolated counter value at time ``t``.

        Values are clamped to the first/last observation outside the
        covered range, matching how a cumulative counter behaves before
        process start (first reading) and after exit (final reading).
        Results are additionally clipped into the observed value range:
        true linear interpolation can never leave it, but degenerate
        (near-duplicate) timestamps would otherwise overflow the slope.
        """
        if self.times.size == 0:
            return 0.0
        value = float(np.interp(t, self.times, self.values))
        return float(min(max(value, self.values.min()), self.values.max()))

    def values_at(self, ts: Iterable[float]) -> np.ndarray:
        """Vectorised :meth:`value_at`."""
        if self.times.size == 0:
            return np.zeros(len(list(ts)))
        out = np.interp(np.asarray(list(ts), dtype=float), self.times, self.values)
        return np.clip(out, self.values.min(), self.values.max())

    def deltas(self) -> np.ndarray:
        """Per-interval increments between consecutive samples."""
        if self.values.size < 2:
            return np.zeros(0)
        return np.diff(self.values)

    def resample(self, grid: Iterable[float]) -> "TimeSeries":
        """Interpolate the series onto a new timestamp grid."""
        grid = np.asarray(list(grid), dtype=float)
        return TimeSeries(grid, self.values_at(grid))

    def shifted(self, dt: float) -> "TimeSeries":
        """Return a copy with all timestamps shifted by ``dt``."""
        return TimeSeries(self.times + dt, self.values.copy())

    def integrate(self) -> float:
        """Trapezoidal integral of the series, for rate-like values."""
        if self.times.size < 2:
            return 0.0
        return float(np.trapezoid(self.values, self.times))

    def to_points(self) -> list[tuple[float, float]]:
        """Serialise to a plain list of ``(t, value)`` pairs."""
        return [(float(t), float(v)) for t, v in zip(self.times, self.values)]
