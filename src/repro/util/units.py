"""Parsing and formatting of byte sizes, frequencies and durations.

The CLI, the filesystem models and the benchmark harness all accept
human-friendly strings like ``"4KB"``, ``"2.7GHz"`` or ``"150ms"``.  The
parsers here are strict (unknown suffixes raise ``ValueError``) so that a
typo in an experiment configuration fails loudly instead of silently
producing a wrong workload.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "parse_bytes",
    "format_bytes",
    "parse_frequency",
    "format_frequency",
    "parse_duration",
    "format_duration",
    "format_number",
]

# Binary multiples: profiles record raw byte counts, and the paper's block
# sizes (4KB ... 64MB) are conventional powers of two.
_BYTE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": 1 << 10,
    "kb": 1 << 10,
    "kib": 1 << 10,
    "m": 1 << 20,
    "mb": 1 << 20,
    "mib": 1 << 20,
    "g": 1 << 30,
    "gb": 1 << 30,
    "gib": 1 << 30,
    "t": 1 << 40,
    "tb": 1 << 40,
    "tib": 1 << 40,
}

_FREQ_SUFFIXES = {
    "hz": 1.0,
    "khz": 1e3,
    "mhz": 1e6,
    "ghz": 1e9,
}

_TIME_SUFFIXES = {
    "ns": 1e-9,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "sec": 1.0,
    "m": 60.0,
    "min": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
}

_NUMBER_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def _split(text: str) -> tuple[float, str]:
    match = _NUMBER_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse quantity: {text!r}")
    return float(match.group(1)), match.group(2).lower()


def parse_bytes(value: str | int | float) -> int:
    """Parse a byte quantity (``"4KB"``, ``"1.5MiB"``, ``4096``) to bytes.

    Integers/floats pass through (rounded); suffixes are binary multiples.
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise ValueError("byte quantity must be non-negative")
        return int(round(value))
    number, suffix = _split(value)
    if suffix not in _BYTE_SUFFIXES:
        raise ValueError(f"unknown byte suffix {suffix!r} in {value!r}")
    result = number * _BYTE_SUFFIXES[suffix]
    if result < 0:
        raise ValueError("byte quantity must be non-negative")
    return int(round(result))


def format_bytes(num: float) -> str:
    """Render a byte count with a binary suffix (``4.0KB``, ``64.0MB``)."""
    num = float(num)
    sign = "-" if num < 0 else ""
    num = abs(num)
    for suffix, factor in (("TB", 1 << 40), ("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if num >= factor:
            return f"{sign}{num / factor:.1f}{suffix}"
    return f"{sign}{num:.0f}B"


def parse_frequency(value: str | int | float) -> float:
    """Parse a frequency (``"2.7GHz"``, ``"10Hz"``, ``2.5e9``) to Hz."""
    if isinstance(value, (int, float)):
        if value <= 0:
            raise ValueError("frequency must be positive")
        return float(value)
    number, suffix = _split(value)
    if suffix not in _FREQ_SUFFIXES:
        raise ValueError(f"unknown frequency suffix {suffix!r} in {value!r}")
    result = number * _FREQ_SUFFIXES[suffix]
    if result <= 0:
        raise ValueError("frequency must be positive")
    return result


def format_frequency(hz: float) -> str:
    """Render a frequency in the largest convenient SI unit."""
    hz = float(hz)
    for suffix, factor in (("GHz", 1e9), ("MHz", 1e6), ("kHz", 1e3)):
        if abs(hz) >= factor:
            return f"{hz / factor:.2f}{suffix}"
    return f"{hz:.2f}Hz"


def parse_duration(value: str | int | float) -> float:
    """Parse a duration (``"150ms"``, ``"2min"``, ``1.5``) to seconds."""
    if isinstance(value, (int, float)):
        if value < 0:
            raise ValueError("duration must be non-negative")
        return float(value)
    number, suffix = _split(value)
    if suffix == "":
        suffix = "s"
    if suffix not in _TIME_SUFFIXES:
        raise ValueError(f"unknown duration suffix {suffix!r} in {value!r}")
    result = number * _TIME_SUFFIXES[suffix]
    if result < 0:
        raise ValueError("duration must be non-negative")
    return result


def format_duration(seconds: float) -> str:
    """Render a duration compactly (``1.50ms``, ``12.3s``, ``4.2min``)."""
    seconds = float(seconds)
    if not math.isfinite(seconds):
        return str(seconds)
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    if seconds >= 120.0:
        return f"{sign}{seconds / 60.0:.1f}min"
    if seconds >= 1.0:
        return f"{sign}{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{sign}{seconds * 1e3:.2f}ms"
    if seconds >= 1e-6:
        return f"{sign}{seconds * 1e6:.2f}us"
    return f"{sign}{seconds * 1e9:.1f}ns"


def format_number(value: float) -> str:
    """Render a count in engineering notation (``1.10e+12`` style for big)."""
    value = float(value)
    if value == 0:
        return "0"
    if abs(value) >= 1e6 or abs(value) < 1e-3:
        return f"{value:.3g}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"
