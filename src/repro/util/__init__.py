"""Shared utilities: unit parsing/formatting, time-series math, tables.

These helpers are deliberately dependency-light (NumPy only) and are used
by every other subpackage.  Nothing in here knows about profiles, atoms or
machines.
"""

from repro.util.units import (
    format_bytes,
    format_duration,
    format_frequency,
    format_number,
    parse_bytes,
    parse_duration,
    parse_frequency,
)
from repro.util.timeseries import TimeSeries
from repro.util.tables import Table

__all__ = [
    "Table",
    "TimeSeries",
    "format_bytes",
    "format_duration",
    "format_frequency",
    "format_number",
    "parse_bytes",
    "parse_duration",
    "parse_frequency",
]
