"""Watcher plugin framework (§4.1 of the paper).

A watcher observes one resource type of a running process.  The plugin
protocol is the paper's, verbatim::

    class WatcherClass(WatcherBase):
        def __init__  (self, handle, context): ...
        def pre_process (self, config): ...
        def sample      (self, now): ...
        def post_process(self): ...
        def finalize    (self): ...

``sample`` is invoked at regular intervals by the profiling driver (one
thread per watcher on the host plane, lockstep on the simulation plane).
In ``finalize`` a plugin may access the raw results of *other* watchers
to derive further values without duplicating measurements — the paper
accepts the resulting plugin dependencies to avoid double sampling.

Each watcher accumulates raw time series; the profiler merges them onto
its nominal grid afterwards (watcher timestamps may drift, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.backend import ProcessHandle
from repro.core.config import SynapseConfig
from repro.util.timeseries import TimeSeries

__all__ = ["WatcherBase", "WatcherResult", "WatcherContext"]


@dataclass
class WatcherContext:
    """Information available to watchers besides the process handle."""

    config: SynapseConfig
    machine_info: dict[str, Any] = field(default_factory=dict)
    backend: Any = None


@dataclass
class WatcherResult:
    """Raw output of one watcher after finalisation."""

    #: Cumulative counter series (per-interval deltas derive from these).
    cumulative: dict[str, TimeSeries] = field(default_factory=dict)
    #: Instantaneous level series (RSS, thread count, ...).
    levels: dict[str, TimeSeries] = field(default_factory=dict)
    #: Static values recorded once per run.
    statics: dict[str, Any] = field(default_factory=dict)
    #: Free-form extra information for the profile's ``info`` dict.
    info: dict[str, Any] = field(default_factory=dict)
    #: Actual sampling timestamps of this watcher.
    timestamps: list[float] = field(default_factory=list)


class WatcherBase:
    """Base class of all watcher plugins."""

    #: Registry name (``"cpu"``, ``"memory"``, ...).
    name: str = "base"
    #: Cumulative metrics this watcher tries to record.
    cumulative_metrics: tuple[str, ...] = ()
    #: Level metrics this watcher tries to record.
    level_metrics: tuple[str, ...] = ()

    def __init__(self, handle: ProcessHandle, context: WatcherContext) -> None:
        self.handle = handle
        self.context = context
        self.result = WatcherResult()
        self._cum: dict[str, list[tuple[float, float]]] = {
            name: [] for name in self.cumulative_metrics
        }
        self._lev: dict[str, list[tuple[float, float]]] = {
            name: [] for name in self.level_metrics
        }

    # -- protocol ----------------------------------------------------------

    def pre_process(self, config: SynapseConfig) -> None:
        """Set up the profiling environment for this watcher."""

    def sample(self, now: float) -> None:
        """Take one sample at (relative) time ``now``.

        The default implementation snapshots the handle's counters and
        records every metric this watcher declares.  Metrics absent from
        the snapshot (e.g. stall counters on the host plane) are skipped.
        """
        counters = self.handle.counters()
        self.result.timestamps.append(now)
        for name, points in self._cum.items():
            if name in counters:
                points.append((now, counters[name]))
        for name, points in self._lev.items():
            if name in counters:
                points.append((now, counters[name]))

    def sample_batch(self, times: list[float], counters: Mapping[str, Any]) -> None:
        """Record many samples at once (the sim plane's grid fast path).

        ``times`` is the full sample grid and ``counters`` maps metric
        names to arrays aligned with it — one snapshot per grid point,
        exactly what per-point :meth:`sample` calls would have seen.
        The default implementation mirrors :meth:`sample`: it records
        every declared metric present in the snapshot and extends the
        watcher's timestamps.  Plugins that override :meth:`sample` with
        custom behaviour are *not* driven through this path unless they
        also override ``sample_batch`` (see the profiler's fast-path
        eligibility check).
        """
        self.result.timestamps.extend(times)
        for name, points in self._cum.items():
            series = counters.get(name)
            if series is not None:
                points.extend(zip(times, series.tolist()))
        for name, points in self._lev.items():
            series = counters.get(name)
            if series is not None:
                points.extend(zip(times, series.tolist()))

    def post_process(self) -> None:
        """Tear down the profiling environment; build raw series."""
        for name, points in self._cum.items():
            if points:
                self.result.cumulative[name] = TimeSeries.from_points(points)
        for name, points in self._lev.items():
            if points:
                self.result.levels[name] = TimeSeries.from_points(points)

    def finalize(self, all_results: Mapping[str, WatcherResult]) -> WatcherResult:
        """Post-process with access to every watcher's raw results."""
        return self.result
