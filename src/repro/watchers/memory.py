"""Memory watcher: resident set, peak, allocation counters (§4.1).

Resident and peak sizes come from ``/proc/<pid>/status`` (host) or the
engine's RSS level timeline (sim); allocation/free byte counters are
exact on the simulation plane and unavailable on the host plane (the
original Synapse derives them — Table 1 marks them "derived").  When
only RSS levels are available, :meth:`finalize` derives allocation and
free totals from the RSS trajectory: positive increments count as
allocations, negative as frees.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.util.timeseries import TimeSeries
from repro.watchers.base import WatcherBase, WatcherResult

__all__ = ["MemoryWatcher"]


class MemoryWatcher(WatcherBase):
    """Samples RSS/peak levels and allocated/freed byte counters."""

    name = "memory"
    cumulative_metrics = ("mem.allocated", "mem.freed")
    level_metrics = ("mem.rss", "mem.peak")

    def finalize(self, all_results: Mapping[str, WatcherResult]) -> WatcherResult:
        result = self.result
        rss = result.levels.get("mem.rss")
        if rss is not None and "mem.allocated" not in result.cumulative and len(rss) > 0:
            deltas = rss.deltas()
            allocated = np.concatenate([[rss.first()], np.where(deltas > 0, deltas, 0.0)])
            freed = np.concatenate([[0.0], np.where(deltas < 0, -deltas, 0.0)])
            result.cumulative["mem.allocated"] = TimeSeries(
                rss.times, np.cumsum(allocated)
            )
            result.cumulative["mem.freed"] = TimeSeries(rss.times, np.cumsum(freed))
            result.info["mem.alloc_provider"] = "derived-from-rss"
        return result
