"""Watcher plugins: the profiling half of Synapse's architecture (Fig 1)."""

from repro.watchers.base import WatcherBase, WatcherContext, WatcherResult
from repro.watchers.blktrace import BlktraceWatcher
from repro.watchers.cpu import CPUWatcher
from repro.watchers.memory import MemoryWatcher
from repro.watchers.registry import get_watcher, list_watchers, register
from repro.watchers.rusage import RusageWatcher
from repro.watchers.storage import StorageWatcher
from repro.watchers.system import SystemWatcher

__all__ = [
    "BlktraceWatcher",
    "CPUWatcher",
    "MemoryWatcher",
    "RusageWatcher",
    "StorageWatcher",
    "SystemWatcher",
    "WatcherBase",
    "WatcherContext",
    "WatcherResult",
    "get_watcher",
    "list_watchers",
    "register",
]
