"""CPU activity watcher (the ``perf stat`` role of §4.1).

Records instruction and cycle counters plus the stall counters that feed
the derived efficiency metric.  Counter *sources* differ per plane:

* simulation plane — exact virtual counters from the engine;
* host plane — scheduler CPU time scaled by the nominal clock (a
  model-based provider; stall counters are then unavailable and simply
  not recorded, which downstream code treats as "metric absent", the
  same way the original degrades when ``perf`` lacks permissions).
"""

from __future__ import annotations

from repro.watchers.base import WatcherBase

__all__ = ["CPUWatcher"]


class CPUWatcher(WatcherBase):
    """Samples instructions, cycles, stalls, FLOPs and thread count."""

    name = "cpu"
    cumulative_metrics = (
        "cpu.instructions",
        "cpu.cycles_used",
        "cpu.cycles_stalled_front",
        "cpu.cycles_stalled_back",
        "cpu.flops",
        "time.utime",
        "time.stime",
    )
    level_metrics = ("cpu.threads",)
