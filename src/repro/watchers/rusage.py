"""Runtime watcher: the POSIX ``rusage`` / ``time -v`` role (§4.1).

Samples wall runtime over time and, on finalisation, records the
process's final resource-usage totals.  The paper wraps the target in
``time -v`` to correct the small offset between process start and the
first watcher sample; here the final rusage totals play that role — the
profile's runtime total comes from the process itself, not from counting
samples.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.util.timeseries import TimeSeries
from repro.watchers.base import WatcherBase, WatcherResult

__all__ = ["RusageWatcher"]


class RusageWatcher(WatcherBase):
    """Samples wall runtime; finalises with exact rusage totals."""

    name = "rusage"
    cumulative_metrics = ("time.runtime",)

    def finalize(self, all_results: Mapping[str, WatcherResult]) -> WatcherResult:
        result = self.result
        usage = self.handle.rusage()
        result.info["rusage"] = dict(usage)
        runtime = usage.get("time.runtime", 0.0)
        if runtime > 0:
            # Pin the cumulative runtime series' end to the rusage value:
            # this corrects the spawn-to-first-sample offset.
            series = result.cumulative.get("time.runtime")
            if series is not None and len(series) > 0:
                values = np.minimum(series.values, runtime)
                values[-1] = runtime
                result.cumulative["time.runtime"] = TimeSeries(series.times, values)
            result.statics["time.runtime_rusage"] = runtime
        if usage.get("mem.peak", 0.0) > 0:
            result.statics["mem.peak_rusage"] = usage["mem.peak"]
        return result
