"""Experimental network watcher.

Table 1 marks network *profiling* as planned work ("network interactions
... are not yet meaningfully profiled"), and §6 names it the most
significant future improvement.  Like the blktrace plugin, this watcher
ships as an **experimental, off-by-default** plugin: it records byte
counters when the execution plane exposes them (the simulation plane
does; the host plane has no per-process socket byte counters without
tracing, so it degrades to recording nothing — exactly the current state
of the original tool).

Enable explicitly::

    SynapseConfig(watchers=(*DEFAULT_WATCHERS, "network"))
"""

from __future__ import annotations

from typing import Mapping

from repro.watchers.base import WatcherBase, WatcherResult

__all__ = ["NetworkWatcher"]


class NetworkWatcher(WatcherBase):
    """Samples network byte counters where the plane provides them."""

    name = "network"
    cumulative_metrics = ("net.bytes_read", "net.bytes_written")

    def finalize(self, all_results: Mapping[str, WatcherResult]) -> WatcherResult:
        if not self.result.cumulative:
            self.result.info["network"] = (
                "no per-process network counters on this plane (Table 1: planned)"
            )
        return self.result
