"""Storage I/O watcher: bytes read/written (§4.1, ``/proc/<pid>/io``)."""

from __future__ import annotations

from repro.watchers.base import WatcherBase

__all__ = ["StorageWatcher"]


class StorageWatcher(WatcherBase):
    """Samples cumulative disk read/write byte counters."""

    name = "storage"
    cumulative_metrics = ("io.bytes_read", "io.bytes_written")
