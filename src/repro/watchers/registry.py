"""Watcher plugin registry.

Watchers are "extensible and exchangeable plugins" (§3.3); third-party
code registers new ones with :func:`register`, and the profiler resolves
the configured watcher names here.
"""

from __future__ import annotations

from repro.core.errors import ConfigError
from repro.watchers.base import WatcherBase
from repro.watchers.blktrace import BlktraceWatcher
from repro.watchers.cpu import CPUWatcher
from repro.watchers.memory import MemoryWatcher
from repro.watchers.network import NetworkWatcher
from repro.watchers.rusage import RusageWatcher
from repro.watchers.storage import StorageWatcher
from repro.watchers.system import SystemWatcher

__all__ = ["register", "get_watcher", "list_watchers"]

_REGISTRY: dict[str, type[WatcherBase]] = {}


def register(cls: type[WatcherBase]) -> type[WatcherBase]:
    """Register a watcher class under its ``name`` (usable as decorator)."""
    if not issubclass(cls, WatcherBase):
        raise ConfigError(f"{cls!r} is not a WatcherBase subclass")
    if not cls.name or cls.name == "base":
        raise ConfigError("watcher classes must define a unique 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def get_watcher(name: str) -> type[WatcherBase]:
    """Resolve a watcher class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown watcher {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def list_watchers() -> list[str]:
    """Names of all registered watchers."""
    return sorted(_REGISTRY)


for _cls in (
    CPUWatcher,
    MemoryWatcher,
    StorageWatcher,
    RusageWatcher,
    SystemWatcher,
    BlktraceWatcher,
    NetworkWatcher,
):
    register(_cls)
