"""System watcher: static machine facts plus system load levels.

Table 1's "System" rows: number of cores, max CPU frequency and total
memory are recorded once (they come from the backend's machine info);
the CPU load level is sampled when the plane exposes it.
"""

from __future__ import annotations

from repro.watchers.base import WatcherBase

__all__ = ["SystemWatcher"]


class SystemWatcher(WatcherBase):
    """Records static system information and samples system load."""

    name = "system"
    level_metrics = ("sys.load_cpu",)

    def pre_process(self, config) -> None:
        info = self.context.machine_info
        statics = self.result.statics
        if "cores" in info:
            statics["sys.cores"] = info["cores"]
        if "frequency" in info:
            statics["sys.cpu_freq"] = info["frequency"]
        if "memory" in info:
            statics["sys.memory"] = info["memory"]
        self.result.info["machine"] = dict(info)
