"""Experimental block-size watcher (the paper's ``blktrace`` prototype).

§4.2/§6: "The Synapse profiler features an experimental watcher plugin
that can, in principle, infer block sizes of disk I/O operations using
blktrace."  This reproduction's prototype works on the simulation plane,
where the engine records every I/O event: on finalisation it computes
byte-weighted mean block sizes per operation and a block-size histogram.
On the host plane (no blktrace available) it records nothing — exactly
the degraded behaviour of an experimental plugin.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.util.timeseries import TimeSeries
from repro.watchers.base import WatcherBase, WatcherResult

__all__ = ["BlktraceWatcher"]


class BlktraceWatcher(WatcherBase):
    """Infers I/O block sizes from the sim engine's I/O event stream."""

    name = "blktrace"

    def finalize(self, all_results: Mapping[str, WatcherResult]) -> WatcherResult:
        record = getattr(self.handle, "record", None)
        events = getattr(record, "io_events", None)
        if not events:
            self.result.info["blktrace"] = "no block-level data (host plane)"
            return self.result
        histogram: dict[str, Counter] = {"read": Counter(), "write": Counter()}
        series: dict[str, list[tuple[float, float]]] = {"read": [], "write": []}
        for event in events:
            histogram[event.op][event.block_size] += event.nbytes
            series[event.op].append((event.t, float(event.block_size)))
        for op, metric in (("read", "io.block_size_read"), ("write", "io.block_size_write")):
            if series[op]:
                points = sorted(series[op])
                self.result.levels[metric] = TimeSeries.from_points(points)
                total = sum(histogram[op].values())
                mean = sum(bs * b for bs, b in histogram[op].items()) / total
                self.result.statics[f"{metric}_mean"] = mean
        self.result.info["blktrace_histogram"] = {
            op: {str(bs): count for bs, count in hist.items()}
            for op, hist in histogram.items()
        }
        return self.result
