"""The host (real-machine) execution backend.

Profiles real processes on this Linux machine, exactly like the original
Synapse: the target is spawned (shell command via ``subprocess``, Python
callable via ``multiprocessing`` — the paper's ``profile(command)``
accepts both), its pid is handed to the watchers, and counters come from
``/proc``.  Hardware-counter metrics (cycles, instructions) use a
model-based provider anchored at the host's nominal frequency, replacing
``perf stat`` (substitution documented in DESIGN.md §2).
"""

from __future__ import annotations

import multiprocessing
import shlex
import subprocess
import threading
import time
from typing import Any, Callable

from repro.core.backend import ExecutionBackend, ProcessHandle
from repro.core.errors import BackendError
from repro.host import hostinfo, procfs

__all__ = ["HostBackend", "HostProcess"]

#: Assumed sustained IPC of unknown host applications.  ``perf stat``
#: would measure this; without it the instruction counts are cycle counts
#: scaled by a constant — consistent, comparable, but not per-app exact.
MODEL_IPC = 1.8
#: Poll interval while waiting for process exit.
_WAIT_POLL = 0.005


class HostProcess(ProcessHandle):
    """Handle over one real child process, observed through ``/proc``."""

    def __init__(
        self,
        pid: int,
        reap: Callable[[], int | None],
        frequency: float,
        start_time: float,
    ) -> None:
        self.pid = pid
        self._reap = reap
        self._frequency = frequency
        self._start_time = start_time
        self._end_time: float | None = None
        self._exit_code: int | None = None
        # Watcher plugins sample from their own threads (§4.1); the
        # snapshot cache must not be mutated concurrently.
        self._lock = threading.Lock()
        self._last: dict[str, float] = {
            "time.utime": 0.0,
            "time.stime": 0.0,
            "cpu.cycles_used": 0.0,
            "cpu.instructions": 0.0,
            "cpu.threads": 1.0,
            "mem.rss": 0.0,
            "mem.peak": 0.0,
        }
        self.counters()  # prime the first snapshot

    # -- sampling ---------------------------------------------------------

    def counters(self) -> dict[str, float]:
        """Snapshot of `/proc` counters (last good values after exit)."""
        with self._lock:
            return self._read_counters()

    def _read_counters(self) -> dict[str, float]:
        stat = procfs.read_stat(self.pid)
        if stat is not None:
            cpu_seconds = stat.utime + stat.stime
            self._last["time.utime"] = stat.utime
            self._last["time.stime"] = stat.stime
            self._last["cpu.cycles_used"] = cpu_seconds * self._frequency
            self._last["cpu.instructions"] = self._last["cpu.cycles_used"] * MODEL_IPC
            self._last["cpu.threads"] = float(stat.num_threads)
        status = procfs.read_status(self.pid)
        if status is not None:
            self._last["mem.rss"] = float(status.vm_rss)
            # Some kernels/sandboxes omit VmHWM; keep a running maximum of
            # the sampled RSS as the peak fallback.
            self._last["mem.peak"] = max(
                self._last.get("mem.peak", 0.0),
                float(status.vm_peak),
                float(status.vm_rss),
            )
        io = procfs.read_io(self.pid)
        if io is not None:
            self._last["io.bytes_read"] = float(io.read_bytes)
            self._last["io.bytes_written"] = float(io.write_bytes)
        self._last["time.runtime"] = (
            (self._end_time or time.monotonic()) - self._start_time
        )
        return dict(self._last)

    # -- lifecycle ------------------------------------------------------------

    def alive(self) -> bool:
        if self._exit_code is not None:
            return False
        code = self._reap()
        if code is None:
            self.counters()
            return True
        self._finish(code)
        return False

    def wait(self) -> int:
        while self._exit_code is None:
            code = self._reap()
            if code is not None:
                self._finish(code)
                break
            self.counters()
            time.sleep(_WAIT_POLL)
        return self._exit_code if self._exit_code is not None else -1

    def _finish(self, code: int) -> None:
        if self._end_time is None:
            self._end_time = time.monotonic()
        self._exit_code = code
        self._last["time.runtime"] = self._end_time - self._start_time

    def rusage(self) -> dict[str, float]:
        """Final totals, the ``time -v`` analogue (§4.1)."""
        return {
            "time.runtime": self._last.get("time.runtime", 0.0),
            "time.utime": self._last.get("time.utime", 0.0),
            "time.stime": self._last.get("time.stime", 0.0),
            "mem.peak": self._last.get("mem.peak", 0.0),
        }

    def info(self) -> dict[str, Any]:
        return {"pid": self.pid, "backend": "host"}


def _run_callable(fn: Callable[..., Any], args: tuple, kwargs: dict) -> None:
    fn(*args, **kwargs)


class HostBackend(ExecutionBackend):
    """Execution backend for real processes on this machine."""

    name = "host"

    def __init__(self) -> None:
        self._frequency = hostinfo.cpu_frequency()
        self._children: list[Any] = []

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def machine_info(self) -> dict[str, Any]:
        return hostinfo.machine_info()

    def spawn(self, target: Any, **kwargs: Any) -> ProcessHandle:
        """Start a shell command (str/list) or Python callable.

        Keyword arguments ``args``/``kwargs`` are forwarded to callables.
        Command output is discarded (black-box profiling, req. P.3).
        """
        start = time.monotonic()
        if callable(target):
            ctx = multiprocessing.get_context("fork")
            proc = ctx.Process(
                target=_run_callable,
                args=(target, tuple(kwargs.get("args", ())), dict(kwargs.get("kwargs", {}))),
            )
            proc.start()
            self._children.append(proc)

            def reap() -> int | None:
                if proc.is_alive():
                    return None
                proc.join()
                return proc.exitcode if proc.exitcode is not None else -1

            if proc.pid is None:  # pragma: no cover - fork always sets pid
                raise BackendError("multiprocessing did not report a pid")
            return HostProcess(proc.pid, reap, self._frequency, start)

        if isinstance(target, str):
            argv = shlex.split(target)
        elif isinstance(target, (list, tuple)):
            argv = [str(part) for part in target]
        else:
            raise BackendError(
                f"cannot spawn {type(target).__name__}: expected a command "
                "string/argv list or a Python callable"
            )
        try:
            popen = subprocess.Popen(
                argv, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
            )
        except OSError as exc:
            raise BackendError(f"cannot spawn {argv!r}: {exc}") from exc
        self._children.append(popen)
        return HostProcess(popen.pid, popen.poll, self._frequency, start)
