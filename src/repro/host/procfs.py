"""Readers for the Linux ``/proc/<pid>`` files the profiler samples.

The original Synapse "uses the perf-stat utility to inspect CPU activity,
the /proc/ filesystem to read system counters on memory and disk I/O, and
the POSIX rusage call" (§4.1).  ``perf stat`` needs perf-events
permissions that portable deployments often lack — the exact motivation
the paper gives for preferring standard system utilities over PAPI — so
this reproduction reads scheduler CPU time from ``/proc/<pid>/stat`` and
derives cycle counts with the host's nominal frequency (a documented
model-based provider, DESIGN.md §2).

All readers return ``None`` when the process has already exited or the
file is unreadable; callers keep their last good snapshot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ProcStat", "ProcStatus", "ProcIO", "read_stat", "read_status", "read_io"]

#: Kernel clock ticks per second (``utime``/``stime`` unit in /proc/stat).
CLK_TCK = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100


@dataclass(frozen=True)
class ProcStat:
    """Fields of interest from ``/proc/<pid>/stat``."""

    utime: float
    stime: float
    num_threads: int


@dataclass(frozen=True)
class ProcStatus:
    """Fields of interest from ``/proc/<pid>/status`` (bytes)."""

    vm_rss: int
    vm_peak: int


@dataclass(frozen=True)
class ProcIO:
    """Fields of interest from ``/proc/<pid>/io`` (bytes)."""

    read_bytes: int
    write_bytes: int


def read_stat(pid: int) -> ProcStat | None:
    """Parse CPU times and thread count for one process."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read().decode("ascii", "replace")
    except OSError:
        return None
    # The command field (2nd) may contain spaces/parens; split after it.
    rparen = data.rfind(")")
    fields = data[rparen + 2 :].split()
    # After the comm field: field[11]=utime, [12]=stime, [17]=num_threads
    # (0-based within the remainder, which starts at original field 3).
    try:
        utime = int(fields[11]) / CLK_TCK
        stime = int(fields[12]) / CLK_TCK
        threads = int(fields[17])
    except (IndexError, ValueError):
        return None
    return ProcStat(utime=utime, stime=stime, num_threads=threads)


def read_status(pid: int) -> ProcStatus | None:
    """Parse resident-set and peak memory for one process."""
    try:
        with open(f"/proc/{pid}/status", "rb") as handle:
            text = handle.read().decode("ascii", "replace")
    except OSError:
        return None
    rss = peak = 0
    for line in text.splitlines():
        if line.startswith("VmRSS:"):
            rss = _kb_field(line)
        elif line.startswith("VmHWM:"):
            peak = _kb_field(line)
    return ProcStatus(vm_rss=rss, vm_peak=peak)


def read_io(pid: int) -> ProcIO | None:
    """Parse storage I/O byte counters (may need same-user permission)."""
    try:
        with open(f"/proc/{pid}/io", "rb") as handle:
            text = handle.read().decode("ascii", "replace")
    except OSError:
        return None
    read_bytes = write_bytes = 0
    for line in text.splitlines():
        if line.startswith("read_bytes:"):
            read_bytes = int(line.split(":")[1])
        elif line.startswith("write_bytes:"):
            write_bytes = int(line.split(":")[1])
    return ProcIO(read_bytes=read_bytes, write_bytes=write_bytes)


def _kb_field(line: str) -> int:
    try:
        return int(line.split()[1]) * 1024
    except (IndexError, ValueError):
        return 0
