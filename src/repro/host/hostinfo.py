"""Discovery of the host machine's static characteristics.

The system watcher records these once per profile (Table 1's "System"
rows: number of cores, max CPU frequency, total memory).  The nominal
frequency additionally anchors the model-based cycle provider of the
host-plane CPU watcher.
"""

from __future__ import annotations

import os
import re
from functools import lru_cache

__all__ = ["cpu_count", "cpu_frequency", "total_memory", "machine_info"]

_DEFAULT_FREQUENCY = 2.5e9


def cpu_count() -> int:
    """Number of online logical CPUs."""
    return os.cpu_count() or 1


@lru_cache(maxsize=1)
def cpu_frequency() -> float:
    """Best-effort maximum CPU frequency in Hz.

    Tries cpufreq sysfs, then ``/proc/cpuinfo``; falls back to a generic
    2.5 GHz when neither is readable (containers often hide both).
    """
    try:
        with open("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq") as handle:
            return float(handle.read().strip()) * 1e3  # kHz -> Hz
    except (OSError, ValueError):
        pass
    try:
        with open("/proc/cpuinfo") as handle:
            text = handle.read()
        speeds = [float(m) for m in re.findall(r"cpu MHz\s*:\s*([0-9.]+)", text)]
        if speeds:
            return max(speeds) * 1e6
    except OSError:
        pass
    return _DEFAULT_FREQUENCY


@lru_cache(maxsize=1)
def total_memory() -> int:
    """Total physical memory in bytes (0 when undiscoverable)."""
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemTotal:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def machine_info() -> dict[str, object]:
    """Host description embedded into profiles (system watcher)."""
    return {
        "name": os.uname().nodename if hasattr(os, "uname") else "host",
        "description": "host execution plane",
        "cores": cpu_count(),
        "frequency": cpu_frequency(),
        "memory": total_memory(),
        "backend": "host",
    }
