"""Host plane: real process execution and observation on this machine."""

from repro.host.backend import HostBackend, HostProcess
from repro.host.hostinfo import cpu_count, cpu_frequency, machine_info, total_memory
from repro.host.procfs import read_io, read_stat, read_status

__all__ = [
    "HostBackend",
    "HostProcess",
    "cpu_count",
    "cpu_frequency",
    "machine_info",
    "read_io",
    "read_stat",
    "read_status",
    "total_memory",
]
