"""Traffic simulations: open/closed-loop drivers over a :class:`Fleet`.

Two load models, following the classic serving-benchmark distinction:

* **Open loop** (:class:`TrafficSim`) — arrivals come from an
  :class:`~repro.traffic.arrivals.ArrivalProcess` at its own rate,
  independent of completions.  Queues can grow without bound if the
  fleet saturates; this is the model that exposes tail-latency collapse.
* **Closed loop** (:class:`ClosedLoopSim`) — a fixed population of
  ``clients`` each issues one request, waits for it to finish, thinks
  for an exponential pause, and repeats.  In-flight requests never
  exceed the client count by construction (the property test pins it).

:class:`TrafficSim` runs in arrival chunks (bounded memory), evaluates an
optional :class:`AutoscalePolicy` against a windowed p99 at fixed
request-count boundaries — *fixed* so that scaling decisions are
invariant to how the caller chunks the trace, preserving the
determinism goldens — and checkpoints the entire simulation (arrival
process RNG, request mix RNG, queues, engine ledgers, latency digest,
autoscaler state) to a JSON-safe dict that resumes bit-exactly.

``feed()`` streams arrivals; ``finish()`` drains in-flight work and
builds a :class:`TrafficReport` (sustained request rate, latency
quantiles, per-machine utilisation, digests).  ``run()`` is both in one
call.  Telemetry: every chunk increments ``traffic.requests`` and
updates per-machine queue-depth gauges; autoscale decisions emit
``traffic.autoscale`` events and the window p99 lands in the
``traffic.window_p99`` histogram.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.sim.noise import seed_from
from repro.sim.resource import MachineSpec
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry
from repro.traffic.arrivals import ArrivalProcess, make_process, restore_process
from repro.traffic.fleet import Fleet, LatencyHistogram
from repro.traffic.workload import RequestMix, default_mix, restore_mix

__all__ = ["AutoscalePolicy", "TrafficSim", "ClosedLoopSim", "TrafficReport"]

_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class AutoscalePolicy:
    """Scale the fleet against a p99 latency SLO, evaluated in-sim.

    Every ``every`` requests the windowed p99 (latencies completed since
    the previous evaluation) is compared against ``slo_p99``: above it,
    one machine is added (up to ``max_machines``); below
    ``slo_p99 * scale_down_margin``, one autoscaled clone is retired
    (base machines always stay).  After any action, ``cooldown``
    evaluations pass before the next one, letting the new capacity
    reflect in the window.
    """

    slo_p99: float
    max_machines: int
    every: int = 5000
    scale_down_margin: float = 0.25
    cooldown: int = 2

    def __post_init__(self) -> None:
        if self.slo_p99 <= 0:
            raise ValueError("slo_p99 must be positive")
        if self.max_machines < 1:
            raise ValueError("max_machines must be >= 1")
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if not 0.0 <= self.scale_down_margin < 1.0:
            raise ValueError("scale_down_margin must be in [0, 1)")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


class TrafficReport:
    """Result of a traffic run: rates, latency quantiles, digests."""

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def to_dict(self) -> Dict[str, Any]:
        return self.data

    def table(self) -> str:
        d = self.data
        lat = d["latency"]
        lines = [
            f"traffic run: {d['name']}",
            f"  requests        {d['requests']:>12,}",
            f"  horizon         {d['horizon']:>12.2f} s (virtual)",
            f"  offered rate    {d['offered_rate']:>12.1f} req/s",
            f"  throughput      {d['throughput']:>12.1f} req/s",
            f"  latency mean    {lat['mean'] * 1e3:>12.3f} ms",
            f"  latency p50     {lat['p50'] * 1e3:>12.3f} ms",
            f"  latency p90     {lat['p90'] * 1e3:>12.3f} ms",
            f"  latency p99     {lat['p99'] * 1e3:>12.3f} ms",
            f"  latency max     {lat['max'] * 1e3:>12.3f} ms",
            f"  queue wait mean {d['wait']['mean'] * 1e3:>12.3f} ms",
            f"  sim speed       {d['sim_requests_per_sec']:>12,.0f} req/s (wall)",
            f"  latency digest  {d['latency_digest']}",
            f"  ledger digest   {d['ledger_digest']}",
            "  machines:",
        ]
        for m in d["machines"]:
            flag = "" if m["active"] else " (retired)"
            lines.append(
                f"    {m['name']:<14} {m['requests']:>9,} req  "
                f"util {m['utilization'] * 100:5.1f} %{flag}"
            )
        for event in d["autoscale_events"]:
            lines.append(
                f"  autoscale @req {event['at']:>8,}: {event['action']:<5}"
                f" {event.get('machine') or '-':<12} window p99"
                f" {event['p99'] * 1e3:8.2f} ms"
            )
        return "\n".join(lines)


def _build_report(
    name: str,
    fleet: Fleet,
    requests: int,
    wall_seconds: float,
    autoscale_events: List[Dict[str, Any]],
) -> TrafficReport:
    recorder = fleet.recorder
    hist = recorder.hist
    horizon = recorder.max_finish
    first = recorder.first_arrival or 0.0
    last = recorder.last_arrival or 0.0
    span = last - first
    busy = fleet.busy_seconds()
    counts = fleet.request_counts()
    machines = [
        {
            "name": server.name,
            "requests": counts[server.name],
            "busy_seconds": busy[server.name],
            "utilization": busy[server.name] / horizon if horizon > 0 else 0.0,
            "active": server.active,
        }
        for server in fleet._servers
    ]
    return TrafficReport(
        {
            "name": name,
            "requests": requests,
            "horizon": horizon,
            "offered_rate": requests / span if span > 0 else 0.0,
            "throughput": requests / horizon if horizon > 0 else 0.0,
            "latency": {
                "mean": hist.mean,
                "p50": hist.quantile(0.50),
                "p90": hist.quantile(0.90),
                "p99": hist.quantile(0.99),
                "max": hist.max,
                "min": hist.min if hist.count else 0.0,
            },
            "wait": {
                "mean": recorder.wait_total / requests if requests else 0.0,
                "max": recorder.wait_max,
            },
            "machines": machines,
            "autoscale_events": list(autoscale_events),
            "latency_digest": recorder.digest.hexdigest(),
            "ledger_digest": fleet.ledger_digest(),
            "ledger": fleet.ledger_totals(),
            "wall_seconds": wall_seconds,
            "sim_requests_per_sec": requests / wall_seconds if wall_seconds > 0 else 0.0,
        }
    )


class TrafficSim:
    """Open-loop traffic run: an arrival process through a fleet."""

    def __init__(
        self,
        process: ArrivalProcess | str,
        machines: Sequence[MachineSpec | str],
        mix: Optional[RequestMix] = None,
        *,
        discipline: str = "fifo",
        dispatch: str = "eft",
        alloc_cost: float = 0.0,
        engine: bool = True,
        noise_seed: Optional[int] = None,
        autoscale: Optional[AutoscalePolicy] = None,
        keep_records: bool = False,
        seed: int = 0,
        name: str = "traffic",
    ) -> None:
        if isinstance(process, str):
            process = make_process(process, seed=seed)
        self.process = process
        if mix is None:
            mix = default_mix(seed=seed_from("traffic.mix", process.seed))
        self.mix = mix
        self.autoscale = autoscale
        self.name = name
        self.fleet = Fleet(
            machines,
            mix,
            discipline=discipline,
            dispatch=dispatch,
            alloc_cost=alloc_cost,
            engine=engine,
            noise_seed=noise_seed,
            keep_records=keep_records,
            name=name,
        )
        self.n_done = 0
        self._window = LatencyHistogram()
        self._next_eval = autoscale.every if autoscale else 0
        self._cool = 0
        self.autoscale_events: List[Dict[str, Any]] = []
        self._wall = 0.0
        self._finished = False

    def feed(self, requests: int, chunk: int = 8192) -> None:
        """Stream the next ``requests`` arrivals through the fleet.

        Memory is bounded by ``chunk``; when autoscaling is on, chunks
        are split internally at policy boundaries so scale decisions
        land at the same request counts for any caller chunking.
        """
        if self._finished:
            raise RuntimeError("cannot feed a finished traffic simulation")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        bus = get_bus()
        registry = get_registry()
        started = time.perf_counter()
        remaining = int(requests)
        while remaining > 0:
            k = min(chunk, remaining)
            if self.autoscale:
                k = min(k, self._next_eval - self.n_done)
            times = self.process.take(k)
            classes, sizes = self.mix.draw(k)
            stats = self.fleet.offer(times, classes, sizes, self.n_done)
            self.n_done += k
            remaining -= k
            latencies = stats["latencies"]
            if latencies.size:
                self._window.observe_many(latencies)
            registry.inc("traffic.requests", k)
            for machine, depth in stats["depths"].items():
                registry.set_gauge(f"traffic.queue_depth.{machine}", depth)
            bus.event(
                "traffic.chunk",
                level="debug",
                sim=self.name,
                requests=self.n_done,
                t_last=stats["t_last"],
                machines=self.fleet.active_count,
            )
            if self.autoscale and self.n_done == self._next_eval:
                self._evaluate(stats["t_last"])
                self._next_eval += self.autoscale.every
        self._wall += time.perf_counter() - started

    def _evaluate(self, t: float) -> None:
        policy = self.autoscale
        p99 = self._window.quantile(0.99) if self._window.count else 0.0
        get_registry().observe("traffic.window_p99", p99)
        if self._cool > 0:
            self._cool -= 1
        else:
            action = None
            machine = None
            if p99 > policy.slo_p99 and self.fleet.active_count < policy.max_machines:
                machine = self.fleet.scale_up()
                action = "up"
            elif p99 < policy.slo_p99 * policy.scale_down_margin:
                machine = self.fleet.scale_down()
                action = "down" if machine else None
            if action:
                self._cool = policy.cooldown
                event = {
                    "at": self.n_done,
                    "t": t,
                    "p99": p99,
                    "action": action,
                    "machine": machine,
                }
                self.autoscale_events.append(event)
                get_bus().event("traffic.autoscale", sim=self.name, **event)
        self._window = LatencyHistogram()

    def finish(self) -> TrafficReport:
        """Drain in-flight work and build the report."""
        if not self._finished:
            started = time.perf_counter()
            self.fleet.drain()
            self._wall += time.perf_counter() - started
            self._finished = True
        return _build_report(
            self.name, self.fleet, self.n_done, self._wall, self.autoscale_events
        )

    def run(self, requests: int, chunk: int = 8192) -> TrafficReport:
        """Feed ``requests`` arrivals and finish: the one-call form."""
        self.feed(requests, chunk=chunk)
        return self.finish()

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the whole simulation mid-trace."""
        if self._finished:
            raise RuntimeError("cannot checkpoint a finished traffic simulation")
        return {
            "version": _CHECKPOINT_VERSION,
            "name": self.name,
            "n_done": self.n_done,
            "process": self.process.state_dict(),
            "fleet": self.fleet.checkpoint(),
            "autoscale": asdict(self.autoscale) if self.autoscale else None,
            "next_eval": self._next_eval,
            "cool": self._cool,
            "window": self._window.state_dict(),
            "events": list(self.autoscale_events),
            "wall": self._wall,
        }

    @classmethod
    def restore(
        cls,
        state: Dict[str, Any],
        trace: Optional[Sequence[float]] = None,
        keep_records: bool = False,
    ) -> "TrafficSim":
        """Resume a simulation from :meth:`checkpoint` output.

        ``trace`` is required iff the arrival process is a
        :class:`~repro.traffic.arrivals.TraceReplay` (checkpoints hold
        only its cursor).
        """
        version = state.get("version")
        if version != _CHECKPOINT_VERSION:
            raise ValueError(f"cannot restore traffic checkpoint version {version!r}")
        sim = cls.__new__(cls)
        sim.process = restore_process(state["process"], trace=trace)
        sim.fleet = Fleet.restore(state["fleet"], keep_records=keep_records)
        sim.mix = sim.fleet.mix
        policy = state["autoscale"]
        sim.autoscale = AutoscalePolicy(**policy) if policy else None
        sim.name = state["name"]
        sim.n_done = int(state["n_done"])
        sim._window = LatencyHistogram.restore(state["window"])
        sim._next_eval = int(state["next_eval"])
        sim._cool = int(state["cool"])
        sim.autoscale_events = list(state["events"])
        sim._wall = float(state["wall"])
        sim._finished = False
        return sim


class ClosedLoopSim:
    """Closed-loop load: ``clients`` issue-wait-think loops over a fleet.

    Each client issues a request, waits for its completion, sleeps an
    exponential think time (mean ``think`` seconds), then issues the
    next — so at most ``clients`` requests are ever in the system.
    FIFO queues only: a closed loop needs each request's finish time at
    dispatch to schedule the client's next arrival, which processor
    sharing cannot provide online.
    """

    def __init__(
        self,
        machines: Sequence[MachineSpec | str],
        mix: Optional[RequestMix] = None,
        *,
        clients: int = 16,
        think: float = 0.1,
        dispatch: str = "eft",
        alloc_cost: float = 0.0,
        engine: bool = False,
        noise_seed: Optional[int] = None,
        keep_records: bool = False,
        seed: int = 0,
        name: str = "closed-loop",
    ) -> None:
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if think < 0:
            raise ValueError("think time must be non-negative")
        if mix is None:
            mix = default_mix(seed=seed_from("traffic.mix", seed))
        self.mix = mix
        self.clients = int(clients)
        self.think = float(think)
        self.name = name
        self._rng = np.random.Generator(np.random.PCG64(seed_from("traffic.think", seed)))
        self.fleet = Fleet(
            machines,
            mix,
            discipline="fifo",
            dispatch=dispatch,
            alloc_cost=alloc_cost,
            engine=engine,
            noise_seed=noise_seed,
            keep_records=keep_records,
            name=name,
        )

    def run(self, requests: int) -> TrafficReport:
        """Drive the client population until ``requests`` complete."""
        started = time.perf_counter()
        registry = get_registry()
        # All clients start thinking at t=0 (staggered by the think
        # draw), so the ramp-up itself is seeded and deterministic.
        heap: List[tuple] = []
        for client in range(self.clients):
            heapq.heappush(
                heap, (float(self._rng.exponential(self.think)), client)
            )
        one = np.empty(1, dtype=np.float64)
        for rid in range(int(requests)):
            t, client = heapq.heappop(heap)
            classes, sizes = self.mix.draw(1)
            one[0] = t
            stats = self.fleet.offer(one, classes, sizes, rid)
            finish = t + float(stats["latencies"][0])
            pause = float(self._rng.exponential(self.think))
            heapq.heappush(heap, (finish + pause, client))
            if (rid + 1) % 1024 == 0:
                registry.inc("traffic.requests", 1024)
        registry.inc("traffic.requests", int(requests) % 1024)
        wall = time.perf_counter() - started
        return _build_report(self.name, self.fleet, int(requests), wall, [])
