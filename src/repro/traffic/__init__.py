"""Traffic plane: arrival processes, load drivers, queue-aware fleets.

The serving-workload counterpart to the batch campaign plane (see the
placement companion paper, arXiv:1506.00272): seeded arrival-process
generators (:mod:`~repro.traffic.arrivals`), request mixes synthesised
into packed engine demands (:mod:`~repro.traffic.workload`), per-machine
FIFO/processor-sharing queues with EFT dispatch and engine-ledger
accounting (:mod:`~repro.traffic.fleet`, :mod:`~repro.traffic.queueing`),
and open/closed-loop drivers with in-sim autoscaling and bit-exact
checkpoint/restore (:mod:`~repro.traffic.sim`).
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    TraceReplay,
    make_process,
    restore_process,
)
from repro.traffic.fleet import Fleet, LatencyHistogram, LatencyRecorder
from repro.traffic.queueing import (
    BlockDigest,
    FifoQueue,
    PSQueue,
    max_concurrent,
    time_average_in_system,
)
from repro.traffic.sim import AutoscalePolicy, ClosedLoopSim, TrafficReport, TrafficSim
from repro.traffic.workload import (
    RequestClass,
    RequestMix,
    batch_for_class,
    default_mix,
    restore_mix,
    unit_seconds,
)

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "MMPPProcess",
    "DiurnalProcess",
    "TraceReplay",
    "make_process",
    "restore_process",
    "RequestClass",
    "RequestMix",
    "batch_for_class",
    "default_mix",
    "restore_mix",
    "unit_seconds",
    "BlockDigest",
    "FifoQueue",
    "PSQueue",
    "time_average_in_system",
    "max_concurrent",
    "Fleet",
    "LatencyHistogram",
    "LatencyRecorder",
    "AutoscalePolicy",
    "ClosedLoopSim",
    "TrafficReport",
    "TrafficSim",
]
