"""Request classes and per-request demand synthesis for traffic runs.

A :class:`RequestClass` names one kind of request (e.g. ``web``, ``api``,
``batch``) as a :class:`~repro.predict.models.DemandVector` plus a
sampling weight and a per-request size dispersion.  A :class:`RequestMix`
draws seeded ``(class index, size factor)`` pairs for each arrival batch:
class indices from the normalised weights, size factors from a mean-1
lognormal whose coefficient of variation is the class's ``size_cv``
(``size_cv == 0`` yields exactly 1.0).

Draw counts per call are fixed by construction (``n`` uniforms, then —
iff any class disperses sizes — ``n`` normals), so the RNG bit stream is
identical no matter how arrivals are chunked, and :meth:`state_dict`
checkpoints resume mid-trace exactly.

:func:`batch_for_class` turns a run of same-class requests into a
:class:`~repro.sim.packed.PackedWorkload` by direct column construction:
each request contributes the same fixed demand-kind pattern (the
``DemandVector.to_demands`` order — compute, memory, I/O, network,
sleep — restricted to the vector's non-zero components), with the
consumption columns scaled by the per-request size factors.  Because the
pattern is per-request and the requests keep arrival order, the packed
columns for any chunking of the same request sequence concatenate to the
same demand sequence — the property the traffic plane's ledger
chunking-invariance golden rests on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.predict.models import DemandVector
from repro.sim.packed import (
    KIND_COMPUTE,
    KIND_IO,
    KIND_MEM,
    KIND_NET,
    KIND_SLEEP,
    PackedWorkload,
)

__all__ = [
    "RequestClass",
    "RequestMix",
    "batch_for_class",
    "default_mix",
    "restore_mix",
    "unit_seconds",
]


@dataclass(frozen=True)
class RequestClass:
    """One request type: demand vector + mix weight + size dispersion."""

    name: str
    weight: float
    vector: DemandVector
    size_cv: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("request class name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"request class weight must be positive, got {self.weight}")
        if self.size_cv < 0:
            raise ValueError(f"size_cv must be non-negative, got {self.size_cv}")
        if self.vector.empty:
            raise ValueError(f"request class {self.name!r} has an empty demand vector")


class RequestMix:
    """Seeded sampler of (class, size factor) pairs per arrival batch."""

    def __init__(self, classes: Sequence[RequestClass], seed: int = 0) -> None:
        if not classes:
            raise ValueError("a request mix needs at least one class")
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate request class names: {names}")
        self.classes: Tuple[RequestClass, ...] = tuple(classes)
        self.seed = int(seed)
        # Two independent streams (class picks vs size factors): each
        # consumes exactly n values per draw(n), so the bit-stream
        # position depends only on the cumulative request count — never
        # on how the trace is chunked.  One interleaved stream would
        # break chunking invariance.
        self._rng = np.random.Generator(np.random.PCG64(self.seed))
        self._rng_size = np.random.Generator(np.random.PCG64(self.seed).jumped(1))
        weights = np.asarray([cls.weight for cls in classes], dtype=np.float64)
        self._cum = np.cumsum(weights / weights.sum())
        # Mean-1 lognormal: sigma^2 = ln(1 + cv^2), mu = -sigma^2 / 2.
        self._sigma = np.sqrt(np.log1p(np.asarray(
            [cls.size_cv for cls in classes], dtype=np.float64) ** 2))
        self._disperse = bool(np.any(self._sigma > 0))

    def draw(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Class indices and size factors for the next ``n`` requests."""
        n = int(n)
        if n <= 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        u = self._rng.random(n)
        idx = np.searchsorted(self._cum, u, side="right")
        idx = np.minimum(idx, len(self.classes) - 1).astype(np.int64)
        if self._disperse:
            z = self._rng_size.standard_normal(n)
            sigma = self._sigma[idx]
            sizes = np.exp(sigma * z - 0.5 * sigma * sigma)
        else:
            sizes = np.ones(n, dtype=np.float64)
        return idx, sizes

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (class definitions + RNG position)."""
        return {
            "version": 1,
            "seed": self.seed,
            "rng": self._rng.bit_generator.state,
            "rng_size": self._rng_size.bit_generator.state,
            "classes": [
                {
                    "name": cls.name,
                    "weight": cls.weight,
                    "size_cv": cls.size_cv,
                    "vector": asdict(cls.vector),
                }
                for cls in self.classes
            ],
        }


def restore_mix(state: Dict[str, Any]) -> RequestMix:
    """Rebuild a :class:`RequestMix` from :meth:`RequestMix.state_dict`."""
    classes = [
        RequestClass(
            name=spec["name"],
            weight=spec["weight"],
            vector=DemandVector(**spec["vector"]),
            size_cv=spec["size_cv"],
        )
        for spec in state["classes"]
    ]
    mix = RequestMix(classes, seed=int(state["seed"]))
    mix._rng.bit_generator.state = state["rng"]
    mix._rng_size.bit_generator.state = state["rng_size"]
    return mix


def default_mix(seed: int = 0) -> RequestMix:
    """A serving-style three-class mix (web / api / batch)."""
    return RequestMix(
        [
            RequestClass(
                name="web",
                weight=0.6,
                vector=DemandVector(
                    instructions=2e7,
                    flops=6e6,
                    net_bytes=float(128 << 10),
                ),
                size_cv=0.4,
            ),
            RequestClass(
                name="api",
                weight=0.3,
                vector=DemandVector(
                    instructions=8e7,
                    flops=2e7,
                    io_read_bytes=float(1 << 20),
                    io_write_bytes=float(256 << 10),
                    io_block_size=256 << 10,
                ),
                size_cv=0.6,
            ),
            RequestClass(
                name="batch",
                weight=0.1,
                vector=DemandVector(
                    instructions=6e8,
                    flops=2e8,
                    mem_alloc_bytes=float(16 << 20),
                    mem_free_bytes=float(16 << 20),
                ),
                size_cv=0.8,
            ),
        ],
        seed=seed,
    )


def _pattern(vector: DemandVector) -> List[int]:
    """Demand-kind codes one request of this vector expands into.

    Mirrors ``DemandVector.to_demands`` component order exactly:
    compute, memory, I/O, network, sleep — restricted to non-zero parts.
    """
    kinds: List[int] = []
    if vector.instructions > 0:
        kinds.append(KIND_COMPUTE)
    if vector.mem_alloc_bytes > 0 or vector.mem_free_bytes > 0:
        kinds.append(KIND_MEM)
    if vector.io_read_bytes > 0 or vector.io_write_bytes > 0:
        kinds.append(KIND_IO)
    if vector.net_bytes > 0:
        kinds.append(KIND_NET)
    if vector.sleep_seconds > 0:
        kinds.append(KIND_SLEEP)
    return kinds


_EMPTY_IDX = np.zeros(0, dtype=np.intp)
_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)


def batch_for_class(
    cls: RequestClass, sizes: np.ndarray, name: str = "traffic"
) -> PackedWorkload:
    """Packed demands for a run of same-class requests.

    One fixed per-request demand pattern, consumption columns scaled by
    ``sizes``; a single stream in a single phase (requests on one machine
    queue run serially).  Built by direct column construction — no
    per-request Python objects.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    k = sizes.size
    vector = cls.vector
    kinds_pattern = _pattern(vector)
    nk = len(kinds_pattern)
    n = k * nk
    if n == 0:
        raise ValueError(f"empty batch for request class {cls.name!r}")
    kinds = np.tile(np.asarray(kinds_pattern, dtype=np.int64), k)
    base = np.arange(k, dtype=np.intp) * nk

    columns: Dict[str, Any] = {}
    class_names: Tuple[str, ...] = ()
    paradigm_names: Tuple[str, ...] = ()
    fs_names: Tuple[str, ...] = ()
    for j, kind in enumerate(kinds_pattern):
        pos = base + j
        if kind == KIND_COMPUTE:
            class_names = (vector.workload_class,)
            paradigm_names = (vector.paradigm,)
            fpi = min(1.0, vector.flops / vector.instructions)
            columns.update(
                c_pos=pos,
                c_instr=vector.instructions * sizes,
                c_cc=np.full(k, np.nan),
                c_class=np.zeros(k, dtype=np.intp),
                c_fpi=np.full(k, fpi),
                c_threads=np.full(k, vector.threads, dtype=np.int64),
                c_paradigm=np.zeros(k, dtype=np.intp),
                c_sr=np.full(k, np.nan),
            )
        elif kind == KIND_MEM:
            columns.update(
                m_pos=pos,
                m_alloc=np.rint(vector.mem_alloc_bytes * sizes).astype(np.int64),
                m_free=np.rint(vector.mem_free_bytes * sizes).astype(np.int64),
                m_block=np.full(k, 1 << 20, dtype=np.int64),
            )
        elif kind == KIND_IO:
            fs_names = ("default",)
            columns.update(
                i_pos=pos,
                i_read=np.rint(vector.io_read_bytes * sizes).astype(np.int64),
                i_written=np.rint(vector.io_write_bytes * sizes).astype(np.int64),
                i_block=np.full(k, vector.io_block_size, dtype=np.int64),
                i_fs=np.zeros(k, dtype=np.intp),
            )
        elif kind == KIND_NET:
            columns.update(
                net_pos=pos,
                net_sent=np.rint(vector.net_bytes * sizes).astype(np.int64),
                net_recv=np.zeros(k, dtype=np.int64),
                net_block=np.full(k, vector.net_block_size, dtype=np.int64),
            )
        else:  # KIND_SLEEP
            columns.update(
                s_pos=pos,
                s_secs=vector.sleep_seconds * sizes,
            )
    return PackedWorkload(
        name=name,
        n=n,
        n_phases=1,
        kinds=kinds,
        stream_phase=np.zeros(1, dtype=np.intp),
        stream_first=np.zeros(1, dtype=np.intp),
        stream_end=np.asarray([n], dtype=np.intp),
        class_names=class_names,
        paradigm_names=paradigm_names,
        fs_names=fs_names,
        **columns,
    )


def unit_seconds(
    classes: Sequence[RequestClass],
    machines: Sequence[Any],
    predictor: Any = None,
) -> np.ndarray:
    """Predicted seconds per unit-size request: shape (classes, machines).

    Uses the analytical :class:`~repro.predict.predictor.Predictor` —
    the same model the placement planner ranks machines with — so the
    fleet's online dispatch agrees with offline planning.  Per-request
    service time is the unit figure scaled linearly by the request's
    size factor (the traffic plane's deliberate approximation: constant
    per-demand latency terms are folded into the linear rate).
    """
    if predictor is None:
        from repro.predict.predictor import Predictor  # noqa: PLC0415 (lazy)

        predictor = Predictor()
    out = np.empty((len(classes), len(machines)), dtype=np.float64)
    for ci, cls in enumerate(classes):
        for mi, machine in enumerate(machines):
            out[ci, mi] = predictor.predict(cls.vector, machine).seconds
    return out
