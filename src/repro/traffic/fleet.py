"""Queue-aware fleet model: dispatch, latency accounting, engine ledger.

A :class:`Fleet` is a set of machines (registry names or specs), each
fronted by a single FIFO or processor-sharing queue, serving a
:class:`~repro.traffic.workload.RequestMix`.  For every arriving request
the fleet:

1. **Dispatches** to a machine — ``"eft"`` picks the earliest predicted
   finish (the placement planner's greedy EFT heuristic applied online,
   using the same analytical :class:`~repro.predict.predictor.Predictor`
   unit costs the offline planner ranks machines with), ``"rr"`` round-
   robins.
2. **Queues** it: end-to-end latency = queue wait + allocation cost +
   service time, where service is the predicted unit seconds for the
   request's class on that machine scaled by its size factor.
3. **Accounts** it on the engine plane: demands are packed per
   (machine, class) and streamed through a dedicated
   :class:`~repro.sim.stream.EngineStream`, so cumulative resource
   ledgers come from the real columnar engine.  One stream per
   (machine, class) pair keeps every stream's demand sequence identical
   under any chunking of the arrival stream — which is what makes the
   ledger digest chunking-invariant.

Latencies flow into a :class:`LatencyRecorder`: a chained
:class:`~repro.traffic.queueing.BlockDigest` over the record byte
stream (the bit-identity golden), a fixed log-spaced
:class:`LatencyHistogram` for p50/p99 in O(1) memory, and optionally the
raw per-request arrays for property tests.  Records are emitted in
request-id order regardless of completion order (processor sharing can
finish requests out of order), so the digest is discipline-agnostic
deterministic.

``scale_up``/``scale_down`` add or retire clones of the base machines
(autoscaling's mechanism; the policy lives in
:class:`~repro.traffic.sim.TrafficSim`).  Retired clones finish their
queue but receive no new work; base machines are never retired.

Everything checkpoints to a JSON-safe dict and restores bit-exactly
mid-trace, riding on ``EngineStream.checkpoint()`` for the ledgers.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.machines import resolve_machine
from repro.sim.noise import NoiseModel, seed_from
from repro.sim.resource import MachineSpec
from repro.sim.stream import EngineStream
from repro.traffic.queueing import BlockDigest, FifoQueue, PSQueue
from repro.traffic.workload import RequestMix, batch_for_class, unit_seconds

__all__ = ["Fleet", "LatencyHistogram", "LatencyRecorder"]

_CHECKPOINT_VERSION = 1


class LatencyHistogram:
    """Fixed log-spaced latency histogram: quantiles in O(1) memory.

    512 geometric bins over [1e-7 s, 1e6 s] give ~6 % bin resolution;
    out-of-range values clamp into the edge bins.  Quantiles are read as
    the geometric midpoint of the covering bin (exact count/sum/min/max
    are tracked separately).
    """

    LO, HI, BINS = 1e-7, 1e6, 512

    def __init__(self) -> None:
        self._edges = np.geomspace(self.LO, self.HI, self.BINS + 1)
        self.counts = np.zeros(self.BINS, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe_many(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        bins = np.searchsorted(self._edges, values, side="right") - 1
        np.clip(bins, 0, self.BINS - 1, out=bins)
        np.add.at(self.counts, bins, 1)
        self.count += int(values.size)
        self.total += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile (within one log-bin's width)."""
        if not self.count:
            return 0.0
        target = q * self.count
        cum = np.cumsum(self.counts)
        bin_ = int(np.searchsorted(cum, target, side="left"))
        bin_ = min(bin_, self.BINS - 1)
        return float(np.sqrt(self._edges[bin_] * self._edges[bin_ + 1]))

    def state_dict(self) -> Dict[str, Any]:
        return {
            "counts": self.counts.tolist(),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max,
        }

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "LatencyHistogram":
        hist = cls()
        hist.counts = np.asarray(state["counts"], dtype=np.int64)
        hist.count = int(state["count"])
        hist.total = float(state["total"])
        hist.min = float("inf") if state["min"] is None else float(state["min"])
        hist.max = float(state["max"])
        return hist


#: Per-record digest layout: 7 float64s.
_REC_FIELDS = 7  # (request id, arrival, start, finish, machine, class, size)


class LatencyRecorder:
    """In-order latency record sink: digest + histogram + stats.

    Records may be *added* out of request-id order (processor sharing);
    they are *emitted* — hashed, binned, counted — strictly in id order
    via a pending reorder buffer, so the digest never depends on
    completion interleaving.
    """

    def __init__(self, keep_records: bool = False) -> None:
        self.digest = BlockDigest()
        self.hist = LatencyHistogram()
        self.wait_total = 0.0
        self.wait_max = 0.0
        self.max_finish = 0.0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None
        self._next = 0
        self._pending: Dict[int, Tuple[float, float, float, int, int, float]] = {}
        self.keep_records = keep_records
        self._kept: List[np.ndarray] = []

    @property
    def emitted(self) -> int:
        return self._next

    def note_arrivals(self, times: np.ndarray) -> None:
        if times.size == 0:
            return
        if self.first_arrival is None:
            self.first_arrival = float(times[0])
        self.last_arrival = float(times[-1])

    def _emit_block(self, block: np.ndarray) -> None:
        """Emit a (k, 7) float64 block of in-order records."""
        self.digest.update(np.ascontiguousarray(block).tobytes())
        latencies = block[:, 3] - block[:, 1]
        self.hist.observe_many(latencies)
        waits = block[:, 2] - block[:, 1]
        self.wait_total += float(waits.sum())
        if waits.size:
            self.wait_max = max(self.wait_max, float(waits.max()))
        self.max_finish = max(self.max_finish, float(block[:, 3].max()))
        if self.keep_records:
            self._kept.append(block.copy())

    def add_batch(
        self,
        first_id: int,
        arrivals: np.ndarray,
        starts: np.ndarray,
        finishes: np.ndarray,
        machines: np.ndarray,
        classes: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Fast path: a consecutive, in-order run of records."""
        k = arrivals.size
        if k == 0:
            return
        if first_id != self._next or self._pending:
            for j in range(k):
                self.add(
                    first_id + j,
                    float(arrivals[j]),
                    float(starts[j]),
                    float(finishes[j]),
                    int(machines[j]),
                    int(classes[j]),
                    float(sizes[j]),
                )
            return
        block = np.empty((k, _REC_FIELDS), dtype=np.float64)
        block[:, 0] = np.arange(first_id, first_id + k)
        block[:, 1] = arrivals
        block[:, 2] = starts
        block[:, 3] = finishes
        block[:, 4] = machines
        block[:, 5] = classes
        block[:, 6] = sizes
        self._emit_block(block)
        self._next += k

    def add(
        self,
        request_id: int,
        arrival: float,
        start: float,
        finish: float,
        machine: int,
        cls: int,
        size: float,
    ) -> None:
        """Add one record (any order); emits every run that completes."""
        self._pending[request_id] = (arrival, start, finish, machine, cls, size)
        if request_id != self._next:
            return
        run: List[List[float]] = []
        while self._next in self._pending:
            arrival, start, finish, machine, cls, size = self._pending.pop(self._next)
            run.append(
                [float(self._next), arrival, start, finish,
                 float(machine), float(cls), size]
            )
            self._next += 1
        self._emit_block(np.asarray(run, dtype=np.float64))

    def records(self) -> np.ndarray:
        """All emitted records as an (n, 7) array (keep_records only)."""
        if not self.keep_records:
            raise ValueError("recorder was created with keep_records=False")
        if not self._kept:
            return np.empty((0, _REC_FIELDS), dtype=np.float64)
        return np.concatenate(self._kept, axis=0)

    def state_dict(self) -> Dict[str, Any]:
        # Kept raw records are an in-memory analysis aid, not checkpoint
        # state; digests and histograms carry the resumable fingerprint.
        return {
            "digest": self.digest.state_dict(),
            "hist": self.hist.state_dict(),
            "wait_total": self.wait_total,
            "wait_max": self.wait_max,
            "max_finish": self.max_finish,
            "first_arrival": self.first_arrival,
            "last_arrival": self.last_arrival,
            "next": self._next,
            "pending": {
                str(rid): list(vals) for rid, vals in sorted(self._pending.items())
            },
        }

    @classmethod
    def restore(cls, state: Dict[str, Any], keep_records: bool = False) -> "LatencyRecorder":
        recorder = cls(keep_records=keep_records)
        recorder.digest = BlockDigest.restore(state["digest"])
        recorder.hist = LatencyHistogram.restore(state["hist"])
        recorder.wait_total = float(state["wait_total"])
        recorder.wait_max = float(state["wait_max"])
        recorder.max_finish = float(state["max_finish"])
        recorder.first_arrival = state["first_arrival"]
        recorder.last_arrival = state["last_arrival"]
        recorder._next = int(state["next"])
        recorder._pending = {
            int(rid): tuple(vals) for rid, vals in state["pending"].items()
        }
        return recorder


class _Server:
    """One fleet machine: spec, queue, activity flag, tallies."""

    __slots__ = ("name", "template", "spec", "queue", "active", "requests")

    def __init__(
        self,
        name: str,
        template: str,
        spec: MachineSpec,
        queue: FifoQueue | PSQueue,
        active: bool = True,
    ) -> None:
        self.name = name
        self.template = template
        self.spec = spec
        self.queue = queue
        self.active = active
        self.requests = 0


class Fleet:
    """Machines + queues + dispatch + engine-ledger accounting."""

    def __init__(
        self,
        machines: Sequence[MachineSpec | str],
        mix: RequestMix,
        *,
        discipline: str = "fifo",
        dispatch: str = "eft",
        alloc_cost: float = 0.0,
        engine: bool = True,
        noise_seed: Optional[int] = None,
        keep_records: bool = False,
        name: str = "traffic",
    ) -> None:
        if not machines:
            raise ValueError("a fleet needs at least one machine")
        if discipline not in ("fifo", "ps"):
            raise ValueError(f"unknown queue discipline {discipline!r} (fifo|ps)")
        if dispatch not in ("eft", "rr"):
            raise ValueError(f"unknown dispatch policy {dispatch!r} (eft|rr)")
        if alloc_cost < 0:
            raise ValueError("alloc_cost must be non-negative")
        self.mix = mix
        self.discipline = discipline
        self.dispatch = dispatch
        self.alloc_cost = float(alloc_cost)
        self.engine_enabled = bool(engine)
        self.noise_seed = noise_seed
        self.name = name
        self._servers: List[_Server] = []
        self._unit_rows: List[List[float]] = []  # per server: unit secs per class
        self._unit_cache: Dict[str, List[float]] = {}
        self._streams: Dict[str, EngineStream] = {}
        self._rr = 0
        self._inflight: Dict[int, Tuple[float, int, int, float]] = {}
        self.recorder = LatencyRecorder(keep_records=keep_records)
        for machine in machines:
            spec = machine if isinstance(machine, MachineSpec) else resolve_machine(machine)
            self._add_server(spec.name, spec.name, spec)
        self._n_base = len(self._servers)

    # -- machine management ------------------------------------------------

    def _unit_row(self, template: str, spec: MachineSpec) -> List[float]:
        row = self._unit_cache.get(template)
        if row is None:
            row = unit_seconds(self.mix.classes, [spec])[:, 0].tolist()
            self._unit_cache[template] = row
        return row

    def _add_server(
        self, name: str, template: str, spec: MachineSpec, active: bool = True
    ) -> _Server:
        queue: FifoQueue | PSQueue = (
            FifoQueue() if self.discipline == "fifo" else PSQueue()
        )
        server = _Server(name, template, spec, queue, active)
        self._servers.append(server)
        self._unit_rows.append(self._unit_row(template, spec))
        return server

    @property
    def machine_names(self) -> List[str]:
        return [server.name for server in self._servers]

    @property
    def active_count(self) -> int:
        return sum(1 for server in self._servers if server.active)

    def scale_up(self) -> str:
        """Add one machine: a clone of the least-replicated base spec."""
        counts = {server.name: 0 for server in self._servers[: self._n_base]}
        for server in self._servers:
            if server.active:
                counts[server.template] = counts.get(server.template, 0) + 1
        template = min(counts, key=lambda t: (counts[t], t))
        base = next(s for s in self._servers if s.name == template)
        # Reactivate a drained clone of this template before minting new.
        for server in self._servers:
            if not server.active and server.template == template:
                server.active = True
                return server.name
        clone_number = sum(
            1 for s in self._servers if s.template == template and s.name != template
        ) + 1
        name = f"{template}#{clone_number}"
        spec = replace(base.spec, name=name)
        self._add_server(name, template, spec)
        return name

    def scale_down(self) -> Optional[str]:
        """Retire the newest active clone (base machines never retire).

        The clone finishes its queued work but gets no new requests.
        """
        for server in reversed(self._servers[self._n_base:]):
            if server.active:
                server.active = False
                return server.name
        return None

    # -- dispatch ----------------------------------------------------------

    def offer(
        self,
        times: np.ndarray,
        classes: np.ndarray,
        sizes: np.ndarray,
        first_id: int,
    ) -> Dict[str, Any]:
        """Route one arrival chunk through the fleet.

        Returns chunk stats: completed latencies (for SLO windows),
        arrival span, and per-machine queue depths.
        """
        k = times.size
        self.recorder.note_arrivals(times)
        if self.discipline == "fifo":
            chunk = self._offer_fifo(times, classes, sizes, first_id)
        else:
            chunk = self._offer_ps(times, classes, sizes, first_id)
        chunk["n"] = int(k)
        chunk["t_last"] = float(times[-1]) if k else 0.0
        chunk["depths"] = self.queue_depths(chunk["t_last"])
        return chunk

    def _active_indices(self) -> List[int]:
        active = [i for i, server in enumerate(self._servers) if server.active]
        if not active:
            raise RuntimeError("fleet has no active machines")
        return active

    def _offer_fifo(
        self,
        times: np.ndarray,
        classes: np.ndarray,
        sizes: np.ndarray,
        first_id: int,
    ) -> Dict[str, Any]:
        k = times.size
        active = self._active_indices()
        servers = self._servers
        unit = self._unit_rows
        alloc = self.alloc_cost
        use_eft = self.dispatch == "eft"
        starts = np.empty(k, dtype=np.float64)
        finishes = np.empty(k, dtype=np.float64)
        assigned = np.empty(k, dtype=np.int64)
        groups: Dict[Tuple[int, int], List[int]] = {}
        for j in range(k):
            t = float(times[j])
            c = int(classes[j])
            size = float(sizes[j])
            if use_eft:
                best = -1
                best_fin = 0.0
                for m in active:
                    free = servers[m].queue.free_t
                    fin = (free if free > t else t) + alloc + unit[m][c] * size
                    if best < 0 or fin < best_fin:
                        best = m
                        best_fin = fin
            else:
                best = active[self._rr % len(active)]
                self._rr += 1
            start, finish = servers[best].queue.offer(t, alloc + unit[best][c] * size)
            servers[best].requests += 1
            starts[j] = start
            finishes[j] = finish
            assigned[j] = best
            groups.setdefault((best, c), []).append(j)
        self.recorder.add_batch(
            first_id, times, starts, finishes, assigned, classes, sizes
        )
        self._feed_engine(groups, sizes)
        return {"latencies": finishes - times}

    def _offer_ps(
        self,
        times: np.ndarray,
        classes: np.ndarray,
        sizes: np.ndarray,
        first_id: int,
    ) -> Dict[str, Any]:
        k = times.size
        active = self._active_indices()
        servers = self._servers
        unit = self._unit_rows
        alloc = self.alloc_cost
        use_eft = self.dispatch == "eft"
        groups: Dict[Tuple[int, int], List[int]] = {}
        chunk_latencies: List[float] = []
        for j in range(k):
            t = float(times[j])
            c = int(classes[j])
            size = float(sizes[j])
            # Advance every queue to the arrival instant first: completed
            # requests leave, and least-work dispatch sees current state.
            for m in active:
                for job, finish in servers[m].queue.advance_to(t):
                    self._complete_ps(job, finish, chunk_latencies)
            if use_eft:
                best = -1
                best_score = 0.0
                for m in active:
                    score = servers[m].queue.work_left() + unit[m][c] * size
                    if best < 0 or score < best_score:
                        best = m
                        best_score = score
            else:
                best = active[self._rr % len(active)]
                self._rr += 1
            rid = first_id + j
            self._inflight[rid] = (t, best, c, size)
            servers[best].requests += 1
            for job, finish in servers[best].queue.offer(
                t, alloc + unit[best][c] * size, rid
            ):
                self._complete_ps(job, finish, chunk_latencies)
            groups.setdefault((best, c), []).append(j)
        self._feed_engine(groups, sizes)
        return {"latencies": np.asarray(chunk_latencies, dtype=np.float64)}

    def _complete_ps(
        self, rid: int, finish: float, chunk_latencies: List[float]
    ) -> None:
        arrival, machine, cls, size = self._inflight.pop(rid)
        # Processor sharing has no queueing phase: start == arrival.
        self.recorder.add(rid, arrival, arrival, finish, machine, cls, size)
        chunk_latencies.append(finish - arrival)

    def drain(self) -> None:
        """Finish all in-flight work (processor sharing completions)."""
        if self.discipline != "ps":
            return
        leftovers: List[float] = []
        for server in self._servers:
            for job, finish in server.queue.drain():
                self._complete_ps(job, finish, leftovers)

    # -- engine ledger -----------------------------------------------------

    def _feed_engine(
        self, groups: Dict[Tuple[int, int], List[int]], sizes: np.ndarray
    ) -> None:
        if not self.engine_enabled:
            return
        for (m, c), indices in sorted(groups.items()):
            server = self._servers[m]
            cls = self.mix.classes[c]
            key = f"{server.name}|{cls.name}"
            stream = self._streams.get(key)
            if stream is None:
                stream = self._open_stream(key, server, cls.name)
            stream.feed(
                batch_for_class(cls, sizes[indices], name=f"{self.name}:{key}")
            )

    def _open_stream(self, key: str, server: _Server, cls_name: str) -> EngineStream:
        from repro.sim.engine import Engine  # noqa: PLC0415 (lazy)

        if self.noise_seed is None:
            noise = NoiseModel.silent()
        else:
            noise = NoiseModel(seed=seed_from(self.noise_seed, server.name, cls_name))
        stream = Engine(server.spec, noise).open_stream(name=f"{self.name}:{key}")
        self._streams[key] = stream
        return stream

    def ledger_totals(self) -> Dict[str, Dict[str, float]]:
        """Cumulative engine counter totals per (machine|class) stream."""
        return {key: self._streams[key].totals() for key in sorted(self._streams)}

    def ledger_digest(self) -> str:
        """Stable fingerprint of every stream's cumulative totals.

        ``repr`` of each float keeps full precision, so two runs agree
        iff their ledgers are bit-identical.
        """
        h = hashlib.blake2b(digest_size=16)
        for key, totals in self.ledger_totals().items():
            h.update(key.encode("utf-8"))
            for counter in sorted(totals):
                h.update(f"|{counter}={totals[counter]!r}".encode("utf-8"))
            h.update(b";")
        return h.hexdigest()

    # -- introspection -----------------------------------------------------

    def queue_depths(self, t: float) -> Dict[str, float]:
        """Per-machine queue depth: backlog seconds (FIFO) or jobs (PS)."""
        out: Dict[str, float] = {}
        for server in self._servers:
            if self.discipline == "fifo":
                out[server.name] = server.queue.backlog(t)
            else:
                out[server.name] = float(server.queue.depth())
        return out

    def busy_seconds(self) -> Dict[str, float]:
        return {server.name: server.queue.busy for server in self._servers}

    def request_counts(self) -> Dict[str, int]:
        return {server.name: server.requests for server in self._servers}

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """JSON-safe snapshot: queues, ledgers, recorder, RNG positions."""
        return {
            "version": _CHECKPOINT_VERSION,
            "name": self.name,
            "discipline": self.discipline,
            "dispatch": self.dispatch,
            "alloc_cost": self.alloc_cost,
            "engine": self.engine_enabled,
            "noise_seed": self.noise_seed,
            "n_base": self._n_base,
            "rr": self._rr,
            "mix": self.mix.state_dict(),
            "servers": [
                {
                    "name": server.name,
                    "template": server.template,
                    "active": server.active,
                    "requests": server.requests,
                    "queue": server.queue.state_dict(),
                }
                for server in self._servers
            ],
            "streams": {
                key: stream.checkpoint() for key, stream in sorted(self._streams.items())
            },
            "recorder": self.recorder.state_dict(),
            "inflight": {
                str(rid): list(vals) for rid, vals in sorted(self._inflight.items())
            },
        }

    @classmethod
    def restore(
        cls, state: Dict[str, Any], keep_records: bool = False
    ) -> "Fleet":
        """Rebuild a fleet mid-trace from :meth:`checkpoint` output."""
        version = state.get("version")
        if version != _CHECKPOINT_VERSION:
            raise ValueError(f"cannot restore fleet checkpoint version {version!r}")
        from repro.traffic.workload import restore_mix  # noqa: PLC0415 (cycle)

        mix = restore_mix(state["mix"])
        base = [spec["name"] for spec in state["servers"][: int(state["n_base"])]]
        fleet = cls(
            base,
            mix,
            discipline=state["discipline"],
            dispatch=state["dispatch"],
            alloc_cost=state["alloc_cost"],
            engine=state["engine"],
            noise_seed=state["noise_seed"],
            keep_records=keep_records,
            name=state["name"],
        )
        queue_cls = FifoQueue if fleet.discipline == "fifo" else PSQueue
        for index, spec_state in enumerate(state["servers"]):
            if index < fleet._n_base:
                server = fleet._servers[index]
            else:
                template = spec_state["template"]
                template_spec = next(
                    s.spec for s in fleet._servers if s.name == template
                )
                server = fleet._add_server(
                    spec_state["name"],
                    template,
                    replace(template_spec, name=spec_state["name"]),
                )
            server.active = bool(spec_state["active"])
            server.requests = int(spec_state["requests"])
            server.queue = queue_cls.restore(spec_state["queue"])
        specs = {server.name: server.spec for server in fleet._servers}
        for key, stream_state in state["streams"].items():
            machine_name = key.split("|", 1)[0]
            fleet._streams[key] = EngineStream.restore(
                stream_state, machine=specs[machine_name]
            )
        fleet._rr = int(state["rr"])
        fleet.recorder = LatencyRecorder.restore(
            state["recorder"], keep_records=keep_records
        )
        fleet._inflight = {
            int(rid): tuple(vals) for rid, vals in state["inflight"].items()
        }
        return fleet
