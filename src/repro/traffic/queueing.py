"""Queueing primitives for the fleet model.

Two single-server disciplines, both written as strictly sequential folds
over arrivals so that results are bit-identical under any chunking of
the arrival stream (the same left-associated-fold argument that makes
``EngineStream`` chunk-invariant):

* :class:`FifoQueue` — first-in-first-out: request *i* starts at
  ``max(arrival_i, finish_{i-1})``; finish time is known at dispatch.
* :class:`PSQueue` — egalitarian processor sharing: all resident jobs
  progress at rate ``1/n``; simulated exactly event-by-event (advance to
  each arrival, completing jobs whose remaining work runs out), so
  completion order can differ from arrival order.

:class:`BlockDigest` is the latency-stream fingerprint: a blake2b chain
over fixed 64 KiB blocks of the record byte stream.  Chaining over
*content-defined* (fixed-size) blocks rather than per-``update`` calls
makes the digest a pure function of the concatenated bytes — invariant
to chunking — while keeping the in-flight state (previous chain value +
the pending partial block) small and JSON-serialisable for checkpoints,
which a raw ``hashlib`` object's opaque internal state is not.

:func:`time_average_in_system` and :func:`max_concurrent` post-process
(arrival, finish) records for the Little's-law and closed-loop-bound
property tests.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = [
    "BlockDigest",
    "FifoQueue",
    "PSQueue",
    "time_average_in_system",
    "max_concurrent",
]


class BlockDigest:
    """Chunking-invariant, checkpointable digest of a byte stream."""

    BLOCK = 64 << 10
    _SIZE = 16

    def __init__(self) -> None:
        self._chain = b"\x00" * self._SIZE
        self._partial = bytearray()

    def update(self, data: bytes) -> None:
        self._partial.extend(data)
        block = self.BLOCK
        while len(self._partial) >= block:
            self._chain = hashlib.blake2b(
                self._chain + bytes(self._partial[:block]), digest_size=self._SIZE
            ).digest()
            del self._partial[:block]

    def hexdigest(self) -> str:
        """Digest of everything seen so far (does not mutate state)."""
        return hashlib.blake2b(
            self._chain + bytes(self._partial), digest_size=self._SIZE
        ).hexdigest()

    def state_dict(self) -> Dict[str, Any]:
        return {"chain": self._chain.hex(), "partial": bytes(self._partial).hex()}

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "BlockDigest":
        digest = cls()
        digest._chain = bytes.fromhex(state["chain"])
        digest._partial = bytearray(bytes.fromhex(state["partial"]))
        return digest


class FifoQueue:
    """Single FIFO server: a (free-time, busy-seconds) fold carry."""

    __slots__ = ("free_t", "busy", "served")

    def __init__(self) -> None:
        self.free_t = 0.0
        self.busy = 0.0
        self.served = 0

    def offer(self, t: float, service: float) -> Tuple[float, float]:
        """Admit one request; returns (start, finish)."""
        start = t if t > self.free_t else self.free_t
        finish = start + service
        self.free_t = finish
        self.busy += service
        self.served += 1
        return start, finish

    def backlog(self, t: float) -> float:
        """Unfinished work (seconds) queued ahead of time ``t``."""
        remaining = self.free_t - t
        return remaining if remaining > 0.0 else 0.0

    def state_dict(self) -> Dict[str, Any]:
        return {"free_t": self.free_t, "busy": self.busy, "served": self.served}

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "FifoQueue":
        queue = cls()
        queue.free_t = float(state["free_t"])
        queue.busy = float(state["busy"])
        queue.served = int(state["served"])
        return queue


class PSQueue:
    """Single processor-sharing server, simulated exactly.

    ``offer`` advances the server clock to the arrival time (emitting
    any completions that happened in between), then admits the job.
    ``drain`` runs the clock forward until the server empties.  The
    whole evolution is a sequential fold over arrival events only, so it
    is independent of how the caller batches arrivals.
    """

    __slots__ = ("clock", "busy", "served", "_remaining", "_ids")

    def __init__(self) -> None:
        self.clock = 0.0
        self.busy = 0.0
        self.served = 0
        self._remaining: List[float] = []
        self._ids: List[int] = []

    def _advance(self, t: float, out: List[Tuple[int, float]]) -> None:
        while self._remaining and self.clock < t:
            n = len(self._remaining)
            least = min(self._remaining)
            horizon = least * n  # wall time until the next completion
            if self.clock + horizon <= t:
                self.clock += horizon
                self.busy += horizon
                keep_r: List[float] = []
                keep_i: List[int] = []
                for remaining, job in zip(self._remaining, self._ids):
                    left = remaining - least
                    if left <= 1e-15 * least:
                        out.append((job, self.clock))
                        self.served += 1
                    else:
                        keep_r.append(left)
                        keep_i.append(job)
                self._remaining = keep_r
                self._ids = keep_i
            else:
                dt = t - self.clock
                share = dt / n
                self._remaining = [r - share for r in self._remaining]
                self.busy += dt
                self.clock = t
                return
        if self.clock < t:
            self.clock = t

    def offer(self, t: float, work: float, job: int) -> List[Tuple[int, float]]:
        """Admit one job at time ``t``; returns completions up to ``t``."""
        out: List[Tuple[int, float]] = []
        self._advance(t, out)
        self._remaining.append(work)
        self._ids.append(job)
        return out

    def advance_to(self, t: float) -> List[Tuple[int, float]]:
        """Run the clock to ``t``; returns (job, finish) completions."""
        out: List[Tuple[int, float]] = []
        self._advance(t, out)
        return out

    def work_left(self) -> float:
        """Unfinished work (seconds) resident in the server."""
        return float(sum(self._remaining))

    def drain(self) -> List[Tuple[int, float]]:
        """Run until empty; returns the remaining (job, finish) pairs."""
        out: List[Tuple[int, float]] = []
        self._advance(float("inf"), out)
        return out

    def depth(self) -> int:
        return len(self._remaining)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "clock": self.clock,
            "busy": self.busy,
            "served": self.served,
            "remaining": list(self._remaining),
            "ids": list(self._ids),
        }

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "PSQueue":
        queue = cls()
        queue.clock = float(state["clock"])
        queue.busy = float(state["busy"])
        queue.served = int(state["served"])
        queue._remaining = [float(x) for x in state["remaining"]]
        queue._ids = [int(x) for x in state["ids"]]
        return queue


def _events(arrivals: np.ndarray, finishes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    times = np.concatenate([arrivals, finishes])
    deltas = np.concatenate(
        [np.ones(len(arrivals)), -np.ones(len(finishes))]
    )
    # Finishes sort before arrivals at equal times (a request that
    # completes the instant another arrives has left the system):
    # ascending secondary key puts delta=-1 first.
    order = np.lexsort((deltas, times))
    return times[order], deltas[order]


def time_average_in_system(arrivals: np.ndarray, finishes: np.ndarray) -> float:
    """Time-averaged number of requests in system over the busy horizon.

    By Little's law this equals ``lambda * W`` (arrival rate times mean
    sojourn) exactly when the horizon covers all records — the identity
    the queue-model invariant test pins.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    finishes = np.asarray(finishes, dtype=np.float64)
    if arrivals.size == 0:
        return 0.0
    times, deltas = _events(arrivals, finishes)
    horizon = times[-1] - times[0]
    if horizon <= 0:
        return 0.0
    counts = np.cumsum(deltas)[:-1]
    widths = np.diff(times)
    return float(np.dot(counts, widths) / horizon)


def max_concurrent(arrivals: np.ndarray, finishes: np.ndarray) -> int:
    """Peak number of requests simultaneously in system."""
    arrivals = np.asarray(arrivals, dtype=np.float64)
    finishes = np.asarray(finishes, dtype=np.float64)
    if arrivals.size == 0:
        return 0
    _, deltas = _events(arrivals, finishes)
    return int(np.cumsum(deltas).max())
