"""Profile analysis: dominance classification, phase detection, reports."""

from repro.analysis.dominance import (
    SampleDominance,
    classify_profile,
    classify_sample,
    dominance_histogram,
)
from repro.analysis.phases import ProfilePhase, detect_phases
from repro.analysis.report import profile_report

__all__ = [
    "ProfilePhase",
    "SampleDominance",
    "classify_profile",
    "classify_sample",
    "detect_phases",
    "dominance_histogram",
    "profile_report",
]
