"""Human-readable profile reports (totals + dominance + phases).

Combines the analysis passes into one text report, used by the
``synapse report`` CLI command and handy when deciding which emulation
kernel / tunables will represent an application best (the judgement call
E.3 asks users to make: "implementing application specific kernels
requires ... understanding of the profiler data measured for that
application").
"""

from __future__ import annotations

from repro.analysis.dominance import classify_profile, dominance_histogram
from repro.analysis.phases import detect_phases
from repro.core.samples import Profile
from repro.sim.resource import MachineSpec
from repro.util.tables import Table
from repro.util.units import format_bytes, format_duration

__all__ = ["profile_report"]


def profile_report(profile: Profile, machine: MachineSpec | None = None) -> str:
    """Render a multi-section analysis report for one profile."""
    sections: list[str] = []

    header = Table(["field", "value"], title="profile")
    header.add_row(["command", profile.command])
    header.add_row(["tags", ",".join(profile.tags) or "-"])
    header.add_row(["machine", profile.machine.get("name", "?")])
    header.add_row(["Tx", format_duration(profile.tx)])
    header.add_row(["samples", f"{profile.n_samples} @ {profile.sample_rate} Hz"])
    header.add_row(["truncated", profile.truncated])
    sections.append(header.render())

    totals = profile.totals()
    totals_table = Table(["metric", "total"], title="totals")
    for name in sorted(totals):
        value = totals[name]
        if name.startswith(("io.", "mem.", "sys.memory")):
            totals_table.add_row([name, format_bytes(value)])
        elif name.startswith("time."):
            totals_table.add_row([name, format_duration(value)])
        else:
            totals_table.add_row([name, value])
    for name, value in sorted(profile.derived().items()):
        totals_table.add_row([f"{name} (derived)", value])
    sections.append(totals_table.render())

    classified = classify_profile(profile, machine)
    histogram = dominance_histogram(classified)
    dom_table = Table(["resource", "dominant in samples"], title="sample dominance")
    for resource, count in histogram.items():
        dom_table.add_row([resource, count])
    sections.append(dom_table.render())

    phases = detect_phases(profile)
    phase_table = Table(
        ["phase", "samples", "start", "duration", "dominant metric"],
        title="detected phases",
    )
    for number, phase in enumerate(phases):
        phase_table.add_row(
            [
                number,
                f"{phase.start_index}-{phase.end_index}",
                format_duration(phase.start_time),
                format_duration(phase.duration),
                phase.dominant_metric,
            ]
        )
    sections.append(phase_table.render())

    return "\n\n".join(sections)
