"""Per-sample dominant-resource classification (the Fig 2/3 notion).

§4.4: "When a resource type fills a sampling period, one can expect that
the application performance is dominated by the interactions with that
resource type for that sample", and Fig 3 shows the dominating type
*switching* when the same profile is replayed on different hardware.
This module computes that classification programmatically: each sample's
recorded consumption is converted to estimated busy time per resource on
a given machine model, and the largest share wins.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.samples import Profile, Sample
from repro.sim.resource import MachineSpec

__all__ = ["SampleDominance", "classify_sample", "classify_profile", "dominance_histogram"]

RESOURCES = ("compute", "storage", "memory", "network", "idle")


@dataclass(frozen=True)
class SampleDominance:
    """Busy-time attribution of one sample on one machine."""

    index: int
    shares: dict[str, float]

    @property
    def dominant(self) -> str:
        """The resource with the largest busy-time share."""
        return max(self.shares, key=lambda key: self.shares[key])

    def share(self, resource: str) -> float:
        """Busy-time fraction of one resource (0 when absent)."""
        return self.shares.get(resource, 0.0)


def _busy_times(sample: Sample, machine: MachineSpec, block_size: int) -> dict[str, float]:
    times = {name: 0.0 for name in RESOURCES if name != "idle"}
    cycles = max(sample.get("cpu.cycles_used"), 0.0)
    if cycles:
        times["compute"] = machine.cpu.seconds_for_cycles(cycles)
    read = max(sample.get("io.bytes_read"), 0.0)
    written = max(sample.get("io.bytes_written"), 0.0)
    if read or written:
        fs = machine.filesystem(None)
        times["storage"] = fs.io_time(int(read), int(written), block_size)
    allocated = max(sample.get("mem.allocated"), 0.0)
    freed = max(sample.get("mem.freed"), 0.0)
    if allocated or freed:
        times["memory"] = machine.memory.alloc_time(
            int(allocated), block_size
        ) + machine.memory.free_time(int(freed), block_size)
    net = max(sample.get("net.bytes_read"), 0.0) + max(
        sample.get("net.bytes_written"), 0.0
    )
    if net:
        times["network"] = net / machine.net_bandwidth
    return times


def classify_sample(
    sample: Sample, machine: MachineSpec, block_size: int = 1 << 20
) -> SampleDominance:
    """Attribute one sample's interval to resources on ``machine``.

    Unattributed interval time (latency hiding, sleeps, scheduling) is
    reported as ``idle`` — the §4.5 semantics gap made visible.
    """
    times = _busy_times(sample, machine, block_size)
    busy = sum(times.values())
    interval = max(sample.dt, 1e-12)
    shares = {name: value / interval for name, value in times.items()}
    shares["idle"] = max(0.0, 1.0 - busy / interval)
    return SampleDominance(index=sample.index, shares=shares)


def classify_profile(
    profile: Profile,
    machine: MachineSpec | None = None,
    block_size: int = 1 << 20,
) -> list[SampleDominance]:
    """Classify every sample of a profile.

    ``machine=None`` resolves the machine the profile was recorded on
    (by name, for sim-plane profiles), falling back to ``localhost``.
    """
    if machine is None:
        from repro.sim.machines import MACHINES, get_machine  # noqa: PLC0415

        name = str(profile.machine.get("name", ""))
        machine = get_machine(name) if name in MACHINES else get_machine("localhost")
    return [classify_sample(sample, machine, block_size) for sample in profile.samples]


def dominance_histogram(classified: list[SampleDominance]) -> dict[str, int]:
    """Count samples per dominant resource."""
    counts = Counter(item.dominant for item in classified)
    return {name: counts.get(name, 0) for name in RESOURCES}
