"""Execution-phase detection from profile time series.

Applications typically run through regimes — startup (input read, heap
growth), main loop (steady compute), teardown (output flush, frees).
The profiler sees only counters, but regime boundaries show up as
change-points in per-sample consumption.  This detector segments a
profile into contiguous phases by comparing consecutive samples'
normalised resource vectors; it powers the ``synapse report`` CLI and
gives middleware developers the stage structure the §2.3 use case needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.samples import Profile

__all__ = ["ProfilePhase", "detect_phases"]

#: Metrics forming the per-sample fingerprint vector.
_FINGERPRINT = (
    "cpu.cycles_used",
    "io.bytes_read",
    "io.bytes_written",
    "mem.allocated",
    "mem.freed",
)


@dataclass(frozen=True)
class ProfilePhase:
    """One detected contiguous regime of samples."""

    start_index: int
    end_index: int  # inclusive
    start_time: float
    duration: float
    #: Mean normalised fingerprint of the phase's samples.
    fingerprint: dict[str, float]

    @property
    def n_samples(self) -> int:
        """Number of samples in the phase."""
        return self.end_index - self.start_index + 1

    @property
    def dominant_metric(self) -> str:
        """The fingerprint component with the largest share."""
        if not self.fingerprint:
            return "idle"
        best = max(self.fingerprint, key=lambda key: self.fingerprint[key])
        return best if self.fingerprint[best] > 0 else "idle"


def _fingerprints(profile: Profile) -> np.ndarray:
    rows = np.array(
        [
            [max(sample.get(name), 0.0) for name in _FINGERPRINT]
            for sample in profile.samples
        ]
    )
    if rows.size == 0:
        return rows
    # Normalise each metric column to its own maximum so heterogeneous
    # units (cycles vs bytes) become comparable shares.
    maxima = rows.max(axis=0)
    maxima[maxima == 0] = 1.0
    return rows / maxima


def detect_phases(profile: Profile, threshold: float = 0.35) -> list[ProfilePhase]:
    """Segment a profile into phases at fingerprint change-points.

    ``threshold`` is the L1 distance between consecutive normalised
    fingerprints above which a new phase starts; lower values split more
    aggressively.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    samples = profile.samples
    if not samples:
        return []
    vectors = _fingerprints(profile)
    boundaries = [0]
    for index in range(1, len(samples)):
        distance = float(np.abs(vectors[index] - vectors[index - 1]).sum())
        if distance > threshold:
            boundaries.append(index)
    boundaries.append(len(samples))

    phases: list[ProfilePhase] = []
    for start, end in zip(boundaries, boundaries[1:]):
        chunk = vectors[start:end]
        mean = chunk.mean(axis=0)
        total = float(mean.sum())
        fingerprint = {
            name: (float(value) / total if total > 0 else 0.0)
            for name, value in zip(_FINGERPRINT, mean)
        }
        phases.append(
            ProfilePhase(
                start_index=samples[start].index,
                end_index=samples[end - 1].index,
                start_time=samples[start].t,
                duration=float(
                    samples[end - 1].t + samples[end - 1].dt - samples[start].t
                ),
                fingerprint=fingerprint,
            )
        )
    return phases
